// Package exec is the vectorized execution engine: a pull-based operator
// tree over logical plans, mirroring Athena's execution model at
// single-process scale, but batch-at-a-time rather than tuple-at-a-time.
// Every operator implements NextBatch, exchanging columnar vec.Batch values
// (column vectors plus a selection vector); scan leaves decode whole column
// chunks in one pass and, when Parallelism allows, run as morsel-driven
// parallel workers over partitions. Plans still execute without
// materialization points — hash joins buffer only their build side,
// aggregations only their group state, windows only the current input —
// which is exactly the design property that makes duplicated common
// subexpressions expensive and fusion worthwhile.
//
// The executor reports the three metrics the paper's evaluation uses:
// wall-clock latency (measured by the caller), bytes scanned from storage
// (Figure 2), and a CPU proxy (rows processed across all operators), plus a
// memory proxy (peak rows held in hash state, the §V.C spilling story).
// Counters are updated once per batch, not once per row, so parallel scan
// leaves add no per-row atomic traffic.
package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/rescache"
	"repro/internal/scanshare"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// Row is one tuple of values, ordered by the producing operator's schema.
type Row = []types.Value

// BatchIterator produces columnar batches; a nil batch signals exhaustion.
// Returned batches are owned by the caller until the next NextBatch call.
type BatchIterator interface {
	NextBatch() (*vec.Batch, error)
}

// DefaultBatchSize is the row count per batch when Options does not set one.
const DefaultBatchSize = 1024

// Options tunes the physical execution of a plan.
type Options struct {
	// Parallelism bounds the concurrent CPU work of one run: morsel-scan
	// workers, hash-join build partitions and aggregation partitions all
	// share one pool of this many slots. 0 means GOMAXPROCS; 1 disables
	// every parallel path.
	Parallelism int
	// BatchSize is the number of rows per execution batch. 0 means
	// DefaultBatchSize; 1 degenerates to row-at-a-time execution (the
	// equivalence baseline).
	BatchSize int
	// ShareScans attaches this run's scan leaves to the store's cross-query
	// scan-share manager: chunk decodes are deduplicated against concurrent
	// queries over the same partitions and backed by a bounded decoded-chunk
	// cache. Results are identical either way; only physical decode work
	// (Metrics.Share.BytesDecoded) changes.
	ShareScans bool
	// ScanCacheBytes bounds the shared decoded-chunk cache (estimated
	// resident bytes; <= 0 means scanshare.DefaultCacheBytes). The first run
	// to touch a store fixes its cache size.
	ScanCacheBytes int64
	// ResultCacheBytes, when > 0, attaches this run to the store's semantic
	// sub-plan result cache (internal/rescache) bounded to that many result
	// bytes: eligible completed sub-plans are offered for cost-weighted
	// admission, and structurally equal sub-plans of later runs are served
	// from cache with as-if-solo metric attribution. The first run to touch
	// a store fixes the cache size. 0 disables the cache for this run.
	ResultCacheBytes int64
	// MemPool is the engine-level memory budget this run reserves blocking
	// operator state against (see internal/memctl). nil means a private
	// unlimited pool: reservations are tracked for Metrics but never fail
	// and never trigger spills.
	MemPool *memctl.Pool
	// QueryText is the SQL text of the run, used to attribute
	// ErrMemoryExceeded failures to the offending query.
	QueryText string
	// NaiveMasks disables the mask-family kernel: filter predicates and
	// aggregation FILTER masks fall back to independent per-expression batch
	// evaluators. Results are identical either way — this is the
	// differential-validation and benchmarking baseline, not a tuning knob.
	NaiveMasks bool
	// PullExec disables push-based pipeline fusion: every operator runs as
	// its own pull iterator with per-boundary batch materialization, exactly
	// the pre-fusion execution model. Results are identical either way —
	// this is the differential-validation and benchmarking baseline.
	PullExec bool
	// SharedClients, when > 1, marks this run as a cross-query fused plan
	// executed once on behalf of that many concurrent clients
	// (internal/xfuse). Memory reservations are then attributed through a
	// shared tracker so a budget failure names every affected client.
	SharedClients int
	// Workers, when non-nil, is an engine-resident worker pool shared by
	// every query the engine runs: total CPU concurrency stays bounded at
	// the pool size across concurrent queries instead of multiplying per
	// query. nil means a private per-run pool of Parallelism slots — the
	// historical one-shot behaviour.
	Workers *WorkerPool
	// Tenant attributes this run's memory reservations to a service-layer
	// tenant (memctl per-tenant accounting). "" means unattributed — the
	// default for embedded single-tenant use and for cross-tenant fused
	// plans, which hold one shared budget no single tenant owns.
	Tenant string
	// NoSkip disables zone-map chunk pruning and sideways join filters:
	// every chunk is decoded, exactly the pre-skipping execution model.
	// Results and logical metrics are identical either way — this is the
	// differential-validation and benchmarking baseline.
	NoSkip bool
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	return o
}

// Metrics aggregates execution counters for one query run.
type Metrics struct {
	Storage storage.Metrics
	// Share counts the run's physical decode work and scan-share activity.
	// Storage.BytesScanned stays the query's logical scan volume (what the
	// paper's bytes-scanned pricing bills) regardless of sharing;
	// Share.BytesDecoded is the physical work this query actually performed.
	Share scanshare.Counters
	// RowsProcessed counts rows flowing through all operators (CPU proxy).
	RowsProcessed int64
	// HashRows counts rows retained in join/aggregate/window hash state
	// (memory proxy).
	HashRows int64
	// SpoolBytesWritten counts bytes materialized by Spool operators;
	// SpoolBytesRead counts bytes read back (once per consumer).
	SpoolBytesWritten int64
	SpoolBytesRead    int64
	// MaskPrefixHits counts per-mask row evaluations skipped by mask-family
	// factoring: rows the shared prefix eliminated times the family size,
	// plus survivor rows times the extra masks each shared residual conjunct
	// would have re-evaluated them under. Zero under NaiveMasks or when no
	// aggregation carries more than one distinct mask.
	MaskPrefixHits int64
	// Memory governance counters (internal/memctl). PeakMemoryBytes is the
	// query's peak tracked resident bytes — always <= the configured
	// MemoryLimitBytes, because the pool only admits reservations that fit
	// after spilling. SpilledBytes/SpillFiles count what blocking
	// operators shed to disk, and MemOperators attributes peaks and spill
	// volume per operator label ("groupby", "sort", "join-build", ...).
	PeakMemoryBytes int64
	SpilledBytes    int64
	SpillFiles      int64
	MemOperators    map[string]memctl.OpStats
	// Pipeline counts push-based fusion activity (zero under
	// Options.PullExec): FusedPipelines is the number of compiled operator
	// chains with at least one fused stage, PipelineBatches the source
	// batches pushed through them, and MaterializedBatchesSaved the batches
	// that crossed a fused project boundary without the dense column
	// materialization the pull path would have performed.
	Pipeline PipelineMetrics
	// ResultCache counts semantic result-cache activity for this run
	// (internal/rescache; all zero when Options.ResultCacheBytes is 0).
	// Hits/Misses count eligible sub-plans probed, ServedBytes the cached
	// result bytes replayed instead of recomputed, AdmissionRejects the
	// computed results the cache declined, and EvictedBytes the entry bytes
	// this run's admissions displaced. The logical counters above stay
	// as-if-solo on a hit: the entry replays the exact Storage/RowsProcessed
	// charges its original computation recorded.
	ResultCache ResultCacheMetrics
	// SharedExec tells the physical story of cross-query shared execution
	// (internal/xfuse) for this client's run. The logical counters above
	// (Storage, RowsProcessed) always describe the query as if it ran alone;
	// SharedExec records how it actually ran: how many queries landed in its
	// admission batch, how many of them one fused plan served, and whether
	// the run waited out an admission window. All zero when shared execution
	// is off or the query bypassed the window.
	SharedExec SharedExecMetrics
	// Skip counts data-skipping activity (zero under Options.NoSkip):
	// chunks/partitions whose decode was pruned by zone maps or sideways
	// join filters, and the encoded bytes that skipping saved. The logical
	// counters above are unchanged by pruning — skipped partitions are
	// re-charged exactly as-if-scanned.
	Skip SkipMetrics
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// SharedExecMetrics counts cross-query shared-execution activity for one
// client's run.
type SharedExecMetrics struct {
	// BatchedQueries is the number of queries admitted to this run's batch
	// (including this one).
	BatchedQueries int64
	// FusedPlans is the number of client queries the executed plan served:
	// >= 2 when this query ran fused with others, 1 when it fell back to a
	// solo run after batching.
	FusedPlans int64
	// WindowWaits counts admission windows this query waited through.
	WindowWaits int64
}

// ResultCacheMetrics counts semantic result-cache activity for one run.
type ResultCacheMetrics struct {
	Hits             int64
	Misses           int64
	AdmissionRejects int64
	EvictedBytes     int64
	ServedBytes      int64
}

// PipelineMetrics counts push-pipeline fusion activity for one run.
type PipelineMetrics struct {
	FusedPipelines           int64
	PipelineBatches          int64
	MaterializedBatchesSaved int64
}

func (m *Metrics) addProcessed(n int64)    { atomic.AddInt64(&m.RowsProcessed, n) }
func (m *Metrics) addHashRows(n int64)     { atomic.AddInt64(&m.HashRows, n) }
func (m *Metrics) addSpoolWritten(n int64) { atomic.AddInt64(&m.SpoolBytesWritten, n) }
func (m *Metrics) addSpoolRead(n int64)    { atomic.AddInt64(&m.SpoolBytesRead, n) }
func (m *Metrics) addMaskPrefixHits(n int64) {
	if n != 0 {
		atomic.AddInt64(&m.MaskPrefixHits, n)
	}
}
func (m *Metrics) addFusedPipelines(n int64)  { atomic.AddInt64(&m.Pipeline.FusedPipelines, n) }
func (m *Metrics) addPipelineBatches(n int64) { atomic.AddInt64(&m.Pipeline.PipelineBatches, n) }
func (m *Metrics) addMaterializedSaved(n int64) {
	if n != 0 {
		atomic.AddInt64(&m.Pipeline.MaterializedBatchesSaved, n)
	}
}

// Result is a fully drained query result.
type Result struct {
	Columns []*expr.Column
	Rows    []Row
	Metrics Metrics
}

// Run builds and drains the physical plan with default options.
func Run(plan logical.Operator, store *storage.Store) (*Result, error) {
	return RunWith(plan, store, Options{})
}

// RunWith builds and drains the physical plan for a logical plan under the
// given execution options.
func RunWith(plan logical.Operator, store *storage.Store, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ex := newExecutor(store, opts)
	defer ex.close()
	start := time.Now()
	it, err := ex.build(plan)
	if err != nil {
		return nil, err
	}
	width := len(plan.Schema())
	var rows []Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			row := make(Row, width)
			b.Gather(i, row)
			rows = append(rows, row)
		}
	}
	// Stop and drain every worker before snapshotting: an abandoned scan
	// (LIMIT) may still have a worker decoding, and its storage-metric adds
	// must happen-before the copy below.
	ex.close()
	ex.metrics.Elapsed = time.Since(start)
	return &Result{Columns: plan.Schema(), Rows: rows, Metrics: *ex.metrics}, nil
}

// newExecutor assembles one run's executor from resolved options: memory
// pool and tracker (per-tenant or shared-batch attributed), worker pool
// (engine-resident when supplied, private otherwise), and the store's
// scan-share manager when opted in.
func newExecutor(store *storage.Store, opts Options) *executor {
	mempool := opts.MemPool
	if mempool == nil {
		mempool = memctl.NewPool(0, "")
	}
	var tracker *memctl.Tracker
	switch {
	case opts.SharedClients > 1:
		// A fused plan serving N clients reserves against the pool exactly
		// once; budget failures name the whole batch.
		tracker = mempool.NewSharedTracker(opts.QueryText, opts.SharedClients)
	case opts.Tenant != "":
		tracker = mempool.NewTenantTracker(opts.QueryText, opts.Tenant)
	default:
		tracker = mempool.NewTracker(opts.QueryText)
	}
	pool := opts.Workers
	if pool == nil {
		pool = newWorkerPool(opts.Parallelism)
	}
	ex := &executor{
		store:   store,
		metrics: &Metrics{},
		opts:    opts,
		pool:    pool,
		mempool: mempool,
		tracker: tracker,
	}
	if opts.ShareScans {
		ex.share = scanshare.For(store, opts.ScanCacheBytes)
	}
	if opts.ResultCacheBytes > 0 {
		ex.rcache = rescache.For(store, opts.ResultCacheBytes)
	}
	return ex
}

// snapshotMem copies the tracker's final accounting into the metrics.
func (ex *executor) snapshotMem() {
	st := ex.tracker.Stats()
	ex.metrics.PeakMemoryBytes = st.PeakBytes
	ex.metrics.SpilledBytes = st.SpilledBytes
	ex.metrics.SpillFiles = st.SpillFiles
	if len(st.Operators) > 0 {
		ex.metrics.MemOperators = st.Operators
	}
}

type executor struct {
	store   *storage.Store
	metrics *Metrics
	opts    Options
	pool    *workerPool
	spools  map[int]*spoolState
	// share is the store's cross-query scan-share manager, nil when
	// Options.ShareScans is off.
	share *scanshare.Manager
	// rcache is the store's semantic result cache, nil when
	// Options.ResultCacheBytes is 0. rcDepth > 0 while building inside a
	// capture or replay subtree, where nested probes are disabled (each
	// query caches at most the topmost eligible sub-plan along any path).
	rcache  *rescache.Cache
	rcDepth int
	// mempool is the resolved memory pool (opts.MemPool, or a private
	// unlimited pool) and tracker this run's accounting handle; blocking
	// operators reserve their resident state against it and register
	// spillables.
	mempool *memctl.Pool
	tracker *memctl.Tracker
	// closers stop morsel-scan worker pools and wait for them to drain; Run
	// invokes them on exit so an abandoned scan (LIMIT, error) never leaks
	// goroutines or races the final metrics snapshot.
	closers []func()
	closed  bool
	// noPush > 0 while building a subtree a LIMIT above may abandon
	// mid-stream on success. Push pipelines run ahead of their consumer and
	// charge metrics worker-side, which only matches the pull path under
	// guaranteed-total consumption, so such subtrees stay pull; blocking
	// operators reset the guard for their own (totally consumed) inputs via
	// buildConsumed.
	noPush int
	// sideCtrls maps each built scan leaf to its skip controller so the
	// layers that know the predicates (filters, chains, hash joins) can
	// configure pruning after the leaf is built. Empty under Options.NoSkip.
	sideCtrls map[*logical.Scan]*scanCtrlReg
	// extraSkip carries zone checks compiled by RunShared from the
	// mask-family shared-prefix conjuncts — pruning every member of a fused
	// batch agrees on, appended to whatever the chain's own filter
	// contributes.
	extraSkip map[*logical.Scan][]skipCheck
}

// buildConsumed builds the input of a blocking operator. The operator
// drains this subtree completely regardless of any LIMIT above it, so push
// pipelines are safe again beneath it.
func (ex *executor) buildConsumed(op logical.Operator) (BatchIterator, error) {
	saved := ex.noPush
	ex.noPush = 0
	it, err := ex.build(op)
	ex.noPush = saved
	return it, err
}

func (ex *executor) close() {
	if ex.closed {
		return
	}
	ex.closed = true
	for _, c := range ex.closers {
		c()
	}
	// Snapshot memory stats before the tracker closes (Close zeroes live
	// reservations), then release the query's budget and drop any spill
	// files operators left registered (mid-query error or LIMIT abandon).
	ex.snapshotMem()
	ex.tracker.Close()
}

// onClose registers cleanup to run when the executor shuts down. Operators
// use it to remove spill files on both success and mid-query abandonment.
func (ex *executor) onClose(f func()) {
	ex.closers = append(ex.closers, f)
}

// layoutOf maps each output column of op to its row position.
func layoutOf(op logical.Operator) map[expr.ColumnID]int {
	sch := op.Schema()
	m := make(map[expr.ColumnID]int, len(sch))
	for i, c := range sch {
		m[c.ID] = i
	}
	return m
}

// evaluator is a compiled expression bound to a row layout.
type evaluator struct {
	fn evalFn
}

func newEvaluator(e expr.Expr, layout map[expr.ColumnID]int) (*evaluator, error) {
	if e == nil {
		return nil, nil
	}
	fn, err := compileExpr(e, layout)
	if err != nil {
		return nil, fmt.Errorf("exec: compiling %s: %w", e, err)
	}
	return &evaluator{fn: fn}, nil
}

// eval evaluates against the given row.
func (ev *evaluator) eval(row Row) types.Value { return ev.fn(row) }

// build dispatches on operator type. Unless Options.PullExec asks for the
// pure pull model, maximal non-blocking Scan→Filter→Project chains compile
// into one push-driven pipeline instead of a stack of pull iterators; every
// other operator (a pipeline breaker) keeps its pull implementation and
// consumes fused chains through the BatchIterator facade.
func (ex *executor) build(op logical.Operator) (BatchIterator, error) {
	if it, ok, err := ex.buildResultCached(op); ok || err != nil {
		return it, err
	}
	if !ex.opts.PullExec {
		if it, ok, err := ex.buildPipeline(op); ok || err != nil {
			return it, err
		}
	}
	switch o := op.(type) {
	case *logical.Scan:
		return ex.buildScan(o, nil)
	case *logical.Filter:
		return ex.buildFilter(o)
	case *logical.Project:
		return ex.buildProject(o)
	case *logical.Join:
		return ex.buildJoin(o)
	case *logical.GroupBy:
		return ex.buildGroupBy(o)
	case *logical.MarkDistinct:
		return ex.buildMarkDistinct(o)
	case *logical.Window:
		return ex.buildWindow(o)
	case *logical.UnionAll:
		return ex.buildUnion(o)
	case *logical.Values:
		return &valuesIter{rows: o.Rows, width: len(o.Schema()), batchSize: ex.opts.BatchSize}, nil
	case *logical.Sort:
		return ex.buildSort(o)
	case *logical.Limit:
		// LIMIT abandons its input mid-stream on success; everything below
		// it (down to the next blocking operator) must stay pull so no
		// pipeline worker runs ahead of the truncation point.
		ex.noPush++
		in, err := ex.build(o.Input)
		ex.noPush--
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, remaining: o.N}, nil
	case *logical.EnforceSingleRow:
		// On success the single-row check drains its input completely.
		in, err := ex.buildConsumed(o.Input)
		if err != nil {
			return nil, err
		}
		return &esrIter{in: in, width: len(o.Schema())}, nil
	case *logical.Spool:
		return ex.buildSpool(o)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %T", op)
	}
}

// drainRows pulls every batch of in, materializing rows and charging
// RowsProcessed once per batch. Blocking operators (sort, window, nested
// loop build) use it to buffer their input.
func drainRows(in BatchIterator, width int, m *Metrics) ([]Row, error) {
	var rows []Row
	for {
		b, err := in.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		n := b.Len()
		m.addProcessed(int64(n))
		for i := 0; i < n; i++ {
			row := make(Row, width)
			b.Gather(i, row)
			rows = append(rows, row)
		}
	}
}

// drainRowsTracked is drainRows with memctl accounting: each batch's
// estimated resident bytes are reserved under op before the rows are kept.
// The caller owns releasing the reservation (typically on operator EOF or
// via ex.onClose). Buffered rows here are not spillable — a reservation
// failure surfaces as ErrMemoryExceeded.
func drainRowsTracked(in BatchIterator, width int, m *Metrics, tracker *memctl.Tracker, op string) ([]Row, int64, error) {
	var rows []Row
	var reserved int64
	for {
		b, err := in.NextBatch()
		if err != nil {
			return nil, reserved, err
		}
		if b == nil {
			return rows, reserved, nil
		}
		n := b.Len()
		m.addProcessed(int64(n))
		var chunkBytes int64
		for i := 0; i < n; i++ {
			row := make(Row, width)
			b.Gather(i, row)
			rows = append(rows, row)
			chunkBytes += rowMemBytes(row)
			// Chunked so one large batch never needs a single reservation
			// bigger than the pool limit (spillable operators can shed
			// between chunks).
			if chunkBytes >= reserveChunkBytes {
				if err := tracker.Reserve(op, chunkBytes); err != nil {
					return nil, reserved, err
				}
				reserved += chunkBytes
				chunkBytes = 0
			}
		}
		if chunkBytes > 0 {
			if err := tracker.Reserve(op, chunkBytes); err != nil {
				return nil, reserved, err
			}
			reserved += chunkBytes
		}
	}
}

// rowsBatcher re-emits materialized rows as dense batches. When a tracker
// is set, each row's reservation is released as it is emitted: the owning
// operator is done and unregistered, and holding the full buffer's budget
// through emission would starve downstream consumers.
type rowsBatcher struct {
	rows      []Row
	width     int
	batchSize int
	idx       int
	tracker   *memctl.Tracker
	op        string
	residual  int64
}

func (it *rowsBatcher) NextBatch() (*vec.Batch, error) {
	if it.idx >= len(it.rows) {
		return nil, nil
	}
	bl := vec.NewBuilder(it.width, it.batchSize)
	var freed int64
	for it.idx < len(it.rows) && !bl.Full() {
		bl.Append(it.rows[it.idx])
		if it.tracker != nil {
			freed += rowMemBytes(it.rows[it.idx])
		}
		it.idx++
	}
	if it.tracker != nil && freed > 0 {
		if freed > it.residual {
			freed = it.residual
		}
		it.residual -= freed
		it.tracker.Release(it.op, freed)
	}
	return bl.Flush(), nil
}

// errTooManyRows is returned by EnforceSingleRow on multi-row input.
var errTooManyRows = errors.New("exec: scalar subquery returned more than one row")
