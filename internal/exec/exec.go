// Package exec is the streaming execution engine: a pull-based (Volcano)
// interpreter over logical plans, mirroring Athena's execution model at
// single-process scale. Plans execute as operator trees without
// materialization points — hash joins buffer only their build side,
// aggregations only their group state, windows only the current input —
// which is exactly the design property that makes duplicated common
// subexpressions expensive and fusion worthwhile.
//
// The executor reports the three metrics the paper's evaluation uses:
// wall-clock latency (measured by the caller), bytes scanned from storage
// (Figure 2), and a CPU proxy (rows processed across all operators), plus a
// memory proxy (peak rows held in hash state, the §V.C spilling story).
package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// Row is one tuple of values, ordered by the producing operator's schema.
type Row = []types.Value

// Iterator produces rows one at a time; a nil row signals exhaustion.
type Iterator interface {
	Next() (Row, error)
}

// Metrics aggregates execution counters for one query run.
type Metrics struct {
	Storage storage.Metrics
	// RowsProcessed counts rows flowing through all operators (CPU proxy).
	RowsProcessed int64
	// HashRows counts rows retained in join/aggregate/window hash state
	// (memory proxy).
	HashRows int64
	// SpoolBytesWritten counts bytes materialized by Spool operators;
	// SpoolBytesRead counts bytes read back (once per consumer).
	SpoolBytesWritten int64
	SpoolBytesRead    int64
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

func (m *Metrics) addProcessed(n int64)    { atomic.AddInt64(&m.RowsProcessed, n) }
func (m *Metrics) addHashRows(n int64)     { atomic.AddInt64(&m.HashRows, n) }
func (m *Metrics) addSpoolWritten(n int64) { atomic.AddInt64(&m.SpoolBytesWritten, n) }
func (m *Metrics) addSpoolRead(n int64)    { atomic.AddInt64(&m.SpoolBytesRead, n) }

// Result is a fully drained query result.
type Result struct {
	Columns []*expr.Column
	Rows    []Row
	Metrics Metrics
}

// Run builds and drains the physical plan for a logical plan.
func Run(plan logical.Operator, store *storage.Store) (*Result, error) {
	ex := &executor{store: store, metrics: &Metrics{}}
	start := time.Now()
	it, err := ex.build(plan)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		rows = append(rows, r)
	}
	ex.metrics.Elapsed = time.Since(start)
	return &Result{Columns: plan.Schema(), Rows: rows, Metrics: *ex.metrics}, nil
}

type executor struct {
	store   *storage.Store
	metrics *Metrics
	spools  map[int]*spoolState
}

// layoutOf maps each output column of op to its row position.
func layoutOf(op logical.Operator) map[expr.ColumnID]int {
	sch := op.Schema()
	m := make(map[expr.ColumnID]int, len(sch))
	for i, c := range sch {
		m[c.ID] = i
	}
	return m
}

// evaluator is a compiled expression bound to a row layout.
type evaluator struct {
	fn evalFn
}

func newEvaluator(e expr.Expr, layout map[expr.ColumnID]int) (*evaluator, error) {
	if e == nil {
		return nil, nil
	}
	fn, err := compileExpr(e, layout)
	if err != nil {
		return nil, fmt.Errorf("exec: compiling %s: %w", e, err)
	}
	return &evaluator{fn: fn}, nil
}

// eval evaluates against the given row.
func (ev *evaluator) eval(row Row) types.Value { return ev.fn(row) }

// build dispatches on operator type.
func (ex *executor) build(op logical.Operator) (Iterator, error) {
	switch o := op.(type) {
	case *logical.Scan:
		return ex.buildScan(o, nil)
	case *logical.Filter:
		return ex.buildFilter(o)
	case *logical.Project:
		return ex.buildProject(o)
	case *logical.Join:
		return ex.buildJoin(o)
	case *logical.GroupBy:
		return ex.buildGroupBy(o)
	case *logical.MarkDistinct:
		return ex.buildMarkDistinct(o)
	case *logical.Window:
		return ex.buildWindow(o)
	case *logical.UnionAll:
		return ex.buildUnion(o)
	case *logical.Values:
		return &valuesIter{rows: o.Rows}, nil
	case *logical.Sort:
		return ex.buildSort(o)
	case *logical.Limit:
		in, err := ex.build(o.Input)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, remaining: o.N}, nil
	case *logical.EnforceSingleRow:
		in, err := ex.build(o.Input)
		if err != nil {
			return nil, err
		}
		return &esrIter{in: in, width: len(o.Schema())}, nil
	case *logical.Spool:
		return ex.buildSpool(o)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %T", op)
	}
}

// errTooManyRows is returned by EnforceSingleRow on multi-row input.
var errTooManyRows = errors.New("exec: scalar subquery returned more than one row")
