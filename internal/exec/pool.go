package exec

import (
	"fmt"
	"sync/atomic"
)

// WorkerPool bounds concurrent CPU work across every parallel operator that
// draws from it: scan-leaf morsel decodes, hash-join build partitions and
// aggregation partitions all take slots from one pool instead of spawning
// independent pools per operator. A pool may be private to one query run
// (the default when Options.Workers is nil) or resident in an engine and
// shared by every query the engine executes — the multi-tenant service
// posture, where total CPU concurrency must stay bounded at the configured
// Parallelism no matter how many queries are in flight.
//
// Slots are acquired per unit of work (one morsel decode, one batch of
// build or aggregation input) and never held while blocked on a channel.
// Operators stacked in one plan — or whole queries stacked on one engine —
// therefore cannot deadlock the pool: every slot hold is a finite piece of
// CPU work, so some holder always finishes and releases.
type WorkerPool struct {
	slots  chan struct{}
	closed atomic.Bool
}

// NewWorkerPool creates a pool with n slots (n < 1 is clamped to 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	return &WorkerPool{slots: make(chan struct{}, n)}
}

// Size returns the slot count.
func (p *WorkerPool) Size() int { return cap(p.slots) }

func (p *WorkerPool) acquire() { p.slots <- struct{}{} }
func (p *WorkerPool) release() { <-p.slots }

// Close drains the pool: it blocks until every outstanding slot has been
// released, then marks the pool closed so the drain is observable
// (a second Close returns immediately). Callers must stop submitting work
// before closing — an engine does so by waiting out its in-flight queries —
// so Close is a verification barrier, not a cancellation mechanism: it
// returns an error only if the pool was somehow still busy beyond doubt
// (which the acquire discipline makes impossible for well-formed runs).
func (p *WorkerPool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	// Claim every slot: this blocks until all in-flight holders release,
	// i.e. until the pool is fully drained. The slots are then returned so
	// a pool erroneously shared past Close fails loudly in tests (leak
	// detectors see the goroutines) rather than deadlocking silently.
	n := cap(p.slots)
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
	for i := 0; i < n; i++ {
		<-p.slots
	}
	return nil
}

// Closed reports whether Close has completed a drain.
func (p *WorkerPool) Closed() bool { return p.closed.Load() }

// String implements fmt.Stringer for debug output.
func (p *WorkerPool) String() string {
	return fmt.Sprintf("workerpool(%d slots, %d busy)", cap(p.slots), len(p.slots))
}

// workerPool is the historical private alias; per-run pools still build
// through it when no engine-resident pool is supplied.
type workerPool = WorkerPool

func newWorkerPool(n int) *workerPool { return NewWorkerPool(n) }
