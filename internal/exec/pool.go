package exec

// workerPool bounds concurrent CPU work across every parallel operator in
// one query run: scan-leaf morsel decodes, hash-join build partitions and
// aggregation partitions all draw from the same Parallelism slots instead
// of spawning independent pools per operator.
//
// Slots are acquired per unit of work (one morsel decode, one batch of
// build or aggregation input) and never held while blocked on a channel.
// Operators stacked in one plan therefore cannot deadlock the pool: every
// slot hold is a finite piece of CPU work, so some holder always finishes
// and releases.
type workerPool struct {
	slots chan struct{}
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	return &workerPool{slots: make(chan struct{}, n)}
}

func (p *workerPool) acquire() { p.slots <- struct{}{} }
func (p *workerPool) release() { <-p.slots }
