package exec

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// ShapeCache memoizes the expensive half of AnalyzeChain — the
// ScanPartitions replay over partition metadata that computes a chain's
// as-if-solo Storage charge and pruned cardinality — keyed by a plan
// fingerprint plus the store's data epoch. Fused groups call AnalyzeChain
// once per member per run, and every member of a duplicate-query batch (the
// paper's concurrent-dashboards motivation) shares one fingerprint, so the
// partition walk happens once per distinct shape per data version instead
// of once per member per run.
//
// The fingerprint must be stable across independently bound plans, whose
// column IDs are fresh per query. It therefore renders only bind-stable
// parts: the table name, the scanned column names, and the peeled prune
// predicate with its partition-column reference rewritten to one fixed
// canonical column before expr.Canonical normalization. Two plans with
// equal fingerprints scan the same table and columns under structurally
// identical pruning, so their Storage charge and pruned row count are
// equal by construction. Stage counts are NOT cached — they are cheap to
// recompute and belong to the individual plan.
type ShapeCache struct {
	mu      sync.Mutex
	entries map[shapeKey]shapeEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type shapeKey struct {
	epoch int64
	fp    string
}

type shapeEntry struct {
	storage    storage.Metrics
	prunedRows int64
}

// NewShapeCache creates an empty cache.
func NewShapeCache() *ShapeCache {
	return &ShapeCache{entries: make(map[shapeKey]shapeEntry)}
}

// Hits and Misses report cache effectiveness (for tests and benchmarks).
func (c *ShapeCache) Hits() int64   { return c.hits.Load() }
func (c *ShapeCache) Misses() int64 { return c.misses.Load() }

// shapeFPCol is the canonical stand-in for a chain's partition column in
// fingerprints: remapping every plan's (fresh-ID) partition column onto it
// makes structurally identical prune predicates render identically.
var shapeFPCol = expr.NewColumn("$shapefp", types.KindUnknown)

// chainFingerprint renders the bind-stable identity of a chain's pruning
// work. ok=false means the chain cannot be fingerprinted (never happens for
// compileChain output, but kept as a guard).
func chainFingerprint(cs *chainSpec) (string, bool) {
	var b strings.Builder
	b.WriteString(cs.scan.Table.Name)
	b.WriteByte('|')
	b.WriteString(strings.Join(cs.scan.ColNames, ","))
	b.WriteByte('|')
	if cs.pruneCond != nil {
		if cs.pruneCol == nil {
			return "", false
		}
		m := expr.Mapping{cs.pruneCol.ID: shapeFPCol}
		b.WriteString(expr.Canonical(m.Apply(cs.pruneCond)).String())
	}
	return b.String(), true
}

// AnalyzeChain is exec.AnalyzeChain through the cache: recognition and
// stage layout are computed fresh (cheap, plan-specific), while the
// partition-metadata replay is served from cache when an equal-fingerprint
// chain was analyzed against the same store epoch.
func (c *ShapeCache) AnalyzeChain(root logical.Operator, store *storage.Store) (*ChainShape, bool, error) {
	cs, ok := compileChain(root)
	if !ok {
		return nil, false, nil
	}
	sh := &ChainShape{NumStages: len(cs.stages), FilterPos: -1}
	for si := range cs.stages {
		if cs.stages[si].kind == stageFilter {
			sh.FilterPos = si
			break
		}
	}
	// The epoch is read once, before the partition walk: a concurrent
	// mutation (Load or Append) can at worst leave this result recorded
	// under the pre-mutation epoch (a dead entry), never stale data under
	// the live epoch.
	fp, fpOK := chainFingerprint(cs)
	key := shapeKey{epoch: store.Epoch(), fp: fp}
	if fpOK {
		c.mu.Lock()
		e, hit := c.entries[key]
		c.mu.Unlock()
		if hit {
			c.hits.Add(1)
			sh.Storage = e.storage
			sh.PrunedRows = e.prunedRows
			return sh, true, nil
		}
	}
	parts, err := store.ScanPartitions(cs.scan.Table.Name, cs.scan.ColNames, cs.prune, &sh.Storage)
	if err != nil {
		return nil, true, err
	}
	for _, p := range parts {
		sh.PrunedRows += int64(p.NumRows)
	}
	c.misses.Add(1)
	if fpOK {
		c.mu.Lock()
		c.entries[key] = shapeEntry{storage: sh.Storage, prunedRows: sh.PrunedRows}
		c.mu.Unlock()
	}
	return sh, true, nil
}
