package exec

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// chainPlan builds a fresh Scan→Filter chain over sales with a prunable
// partition predicate (s_date < dateLt) and a residual (s_qty > qtyGt).
// Each call binds fresh columns, as independently planned queries do.
func chainPlan(t *testing.T, st *storage.Store, dateLt, qtyGt int64) logical.Operator {
	t.Helper()
	s := scanOf(t, st, "sales")
	return logical.NewFilter(s, expr.And(
		expr.NewBinary(expr.OpLt, expr.Ref(s.ColumnFor("s_date")), expr.Lit(types.Int(dateLt))),
		expr.NewBinary(expr.OpGt, expr.Ref(s.ColumnFor("s_qty")), expr.Lit(types.Int(qtyGt))),
	))
}

func TestShapeCacheMatchesUncached(t *testing.T) {
	st := fixture(t)
	c := NewShapeCache()

	plan := chainPlan(t, st, 2, 3)
	want, ok, err := AnalyzeChain(plan, st)
	if err != nil || !ok {
		t.Fatalf("uncached AnalyzeChain: ok=%v err=%v", ok, err)
	}
	got, ok, err := c.AnalyzeChain(plan, st)
	if err != nil || !ok {
		t.Fatalf("cached AnalyzeChain: ok=%v err=%v", ok, err)
	}
	if *got != *want {
		t.Fatalf("cached shape %+v != uncached %+v", *got, *want)
	}
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 0/1", c.Hits(), c.Misses())
	}

	// An independently bound plan of the same shape (fresh column IDs)
	// must hit and produce the identical analysis.
	again, ok, err := c.AnalyzeChain(chainPlan(t, st, 2, 3), st)
	if err != nil || !ok {
		t.Fatalf("second AnalyzeChain: ok=%v err=%v", ok, err)
	}
	if *again != *want {
		t.Fatalf("hit shape %+v != uncached %+v", *again, *want)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestShapeCacheDistinguishesShapes(t *testing.T) {
	st := fixture(t)
	c := NewShapeCache()
	a, _, err := c.AnalyzeChain(chainPlan(t, st, 2, 3), st)
	if err != nil {
		t.Fatal(err)
	}
	// Different prune constant → different fingerprint → fresh analysis
	// with a different partition charge.
	b, _, err := c.AnalyzeChain(chainPlan(t, st, 1, 3), st)
	if err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 2 {
		t.Fatalf("misses = %d, want 2 (distinct prune shapes shared an entry)", c.Misses())
	}
	if a.Storage.BytesScanned == b.Storage.BytesScanned && a.PrunedRows == b.PrunedRows {
		t.Fatalf("distinct prunes produced identical charges: %+v vs %+v", a.Storage, b.Storage)
	}
	// A different residual over the same prune shares the partition walk:
	// the residual is not part of the prune fingerprint only if it stays
	// out of the pruning predicate — which it does (s_qty is not the
	// partition column), so this is a hit.
	before := c.Hits()
	if _, _, err := c.AnalyzeChain(chainPlan(t, st, 2, 99), st); err != nil {
		t.Fatal(err)
	}
	if c.Hits() != before+1 {
		t.Fatalf("same-prune different-residual chain missed (hits %d, want %d)", c.Hits(), before+1)
	}
}

func TestShapeCacheEpochInvalidation(t *testing.T) {
	st := fixture(t)
	c := NewShapeCache()
	before, _, err := c.AnalyzeChain(chainPlan(t, st, 3, 0), st)
	if err != nil {
		t.Fatal(err)
	}
	// Reloading the table (Load replaces its data) bumps the store epoch;
	// the cached charge for the old epoch must not be served for the new
	// data.
	var rows [][]types.Value
	for i := 0; i < 6; i++ {
		rows = append(rows, []types.Value{
			types.Int(0), types.Int(0), types.Int(int64(i)), types.Float(1), types.Int(int64(i % 3)),
		})
	}
	if err := st.Load("sales", rows); err != nil {
		t.Fatal(err)
	}
	after, _, err := c.AnalyzeChain(chainPlan(t, st, 3, 0), st)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 0 || c.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 0/2 (stale epoch served)", c.Hits(), c.Misses())
	}
	if before.PrunedRows != 12 || after.PrunedRows != 6 {
		t.Fatalf("PrunedRows before/after reload = %d/%d, want 12/6", before.PrunedRows, after.PrunedRows)
	}
	// And the uncached analysis agrees with the cached one on fresh data.
	want, _, err := AnalyzeChain(chainPlan(t, st, 3, 0), st)
	if err != nil {
		t.Fatal(err)
	}
	if *after != *want {
		t.Fatalf("cached %+v != uncached %+v after reload", *after, *want)
	}
}
