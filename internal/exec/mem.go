package exec

import "repro/internal/types"

// Memory estimation for the memctl reservations made by blocking
// operators. Estimates are deliberately simple — a fixed per-value struct
// cost plus string payloads and container overheads — because the budget
// they enforce is a governance bound, not an allocator measurement; what
// matters is that the estimate grows monotonically with real usage so the
// spill policy fires under genuine pressure.

// Operator labels used for reservation attribution in Metrics.
const (
	opGroupBy = "groupby"
	opSort    = "sort"
	opJoin    = "join-build"
	opNLJoin  = "nestedloop-build"
	opWindow  = "window"
	opSpool   = "spool"
)

const (
	// valueMemBase is the resident cost of one types.Value struct.
	valueMemBase = 48
	// rowMemBase covers the slice header plus allocator slack of one row.
	rowMemBase = 32
	// groupMemBase covers one aggregation group: struct, map entry, key
	// string and order-slice slot.
	groupMemBase = 128
	// aggStateMemBytes is the resident cost of one aggState (two embedded
	// values plus counters).
	aggStateMemBytes = 128
	// hashRowOverhead covers a hash-table bucket entry holding one row.
	hashRowOverhead = 64
	// reserveChunkBytes caps a single Reserve call made while buffering
	// rows. Reserving a large batch in one call would fail outright
	// whenever it alone exceeds the pool limit; chunking lets the pool
	// spill between chunks (including the reserving operator itself), so
	// any input larger than the budget degrades to spilling instead.
	reserveChunkBytes = 32 << 10
)

func valueMemBytes(v types.Value) int64 {
	return valueMemBase + int64(len(v.S))
}

func rowMemBytes(row Row) int64 {
	n := int64(rowMemBase)
	for _, v := range row {
		n += valueMemBytes(v)
	}
	return n
}

func groupMemBytes(keyVals []types.Value, nAggs int) int64 {
	n := int64(groupMemBase) + int64(nAggs)*aggStateMemBytes
	for _, v := range keyVals {
		n += valueMemBytes(v)
	}
	return n
}
