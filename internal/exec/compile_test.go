package exec

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

// compileAndEval compiles e over a single-column layout and evaluates it.
func compileAndEval(t *testing.T, e expr.Expr, col *expr.Column, v types.Value) types.Value {
	t.Helper()
	fn, err := compileExpr(e, map[expr.ColumnID]int{col.ID: 0})
	if err != nil {
		t.Fatalf("compile %s: %v", e, err)
	}
	return fn(Row{v})
}

func TestCompileMatchesInterpreter(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	s := expr.NewColumn("s", types.KindString)
	b := expr.NewColumn("b", types.KindBool)
	layout := map[expr.ColumnID]int{a.ID: 0, s.ID: 1, b.ID: 2}

	exprs := []expr.Expr{
		expr.NewBinary(expr.OpAdd, expr.Ref(a), expr.Lit(types.Int(5))),
		expr.NewBinary(expr.OpSub, expr.Ref(a), expr.Lit(types.Int(5))),
		expr.NewBinary(expr.OpMul, expr.Ref(a), expr.Lit(types.Float(0.5))),
		expr.NewBinary(expr.OpDiv, expr.Ref(a), expr.Lit(types.Int(0))),
		expr.NewBinary(expr.OpDiv, expr.Ref(a), expr.Lit(types.Int(4))),
		expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(3))),
		expr.NewBinary(expr.OpLe, expr.Ref(a), expr.Lit(types.Int(3))),
		expr.NewBinary(expr.OpNe, expr.Ref(s), expr.Lit(types.String("x"))),
		expr.NewBinary(expr.OpAnd, expr.Ref(b), expr.TrueExpr()),
		expr.NewBinary(expr.OpOr, expr.Ref(b), expr.FalseExpr()),
		&expr.Not{E: expr.Ref(b)},
		&expr.IsNull{E: expr.Ref(a)},
		&expr.IsNull{E: expr.Ref(a), Neg: true},
		&expr.InList{E: expr.Ref(a), List: []expr.Expr{expr.Lit(types.Int(1)), expr.Lit(types.Int(7))}},
		&expr.InList{E: expr.Ref(a), List: []expr.Expr{expr.Lit(types.Int(1)), expr.Lit(types.NullOf(types.KindInt64))}, Neg: true},
		&expr.Like{E: expr.Ref(s), Pattern: "he%o"},
		&expr.Coalesce{Args: []expr.Expr{expr.Ref(a), expr.Lit(types.Int(9))}},
		&expr.Case{Whens: []expr.When{
			{Cond: expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(0))), Then: expr.Lit(types.String("pos"))},
		}, Else: expr.Lit(types.String("neg"))},
		&expr.Case{Whens: []expr.When{
			{Cond: expr.Ref(b), Then: expr.Ref(a)},
		}},
	}
	rows := []Row{
		{types.Int(7), types.String("hello"), types.Bool(true)},
		{types.Int(-2), types.String("x"), types.Bool(false)},
		{types.NullOf(types.KindInt64), types.NullOf(types.KindString), types.NullOf(types.KindBool)},
		{types.Int(1), types.String(""), types.Bool(true)},
	}

	for _, e := range exprs {
		fn, err := compileExpr(e, layout)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		for ri, row := range rows {
			got := fn(row)
			env := &expr.SlotEnv{Slots: layout, Row: row}
			want := expr.Eval(e, env)
			if !got.Equal(want) {
				t.Errorf("%s on row %d: compiled=%v interpreted=%v", e, ri, got, want)
			}
		}
	}
}

func TestCompileUnboundColumn(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	if _, err := compileExpr(expr.Ref(a), map[expr.ColumnID]int{}); err == nil {
		t.Error("unbound column must fail at compile time")
	}
}

func TestCompileKleeneShortCircuit(t *testing.T) {
	// FALSE AND <panic-if-evaluated> must not evaluate the right side;
	// closures always evaluate both operands of AND only when needed.
	a := expr.NewColumn("a", types.KindBool)
	e := expr.NewBinary(expr.OpAnd, expr.Ref(a), expr.NewBinary(expr.OpDiv, expr.Lit(types.Int(1)), expr.Lit(types.Int(0))))
	got := compileAndEval(t, e, a, types.Bool(false))
	if got.Null || got.AsBool() {
		t.Errorf("FALSE AND x = %v, want false", got)
	}
}

func TestEncodeKey(t *testing.T) {
	cases := [][2][]types.Value{
		{{types.Int(1)}, {types.Float(1)}},
		{{types.Int(1)}, {types.NullOf(types.KindInt64)}},
		{{types.String("a|b")}, {types.String("a"), types.String("b")}},
		{{types.String("1")}, {types.Int(1)}},
	}
	var buf1, buf2 strings.Builder
	for i, c := range cases {
		k1 := encodeKey(&buf1, c[0])
		k2 := encodeKey(&buf2, c[1])
		if k1 == k2 {
			t.Errorf("case %d: keys collide: %q", i, k1)
		}
	}
	// Same values encode identically.
	k1 := encodeKey(&buf1, []types.Value{types.Int(5), types.String("x")})
	k2 := encodeKey(&buf2, []types.Value{types.Int(5), types.String("x")})
	if k1 != k2 {
		t.Error("identical tuples must encode identically")
	}
}
