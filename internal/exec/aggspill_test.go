package exec

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// Recursive replay re-partitioning: a spilled partition whose groups alone
// exceed the memory budget must split by deeper hash bits and still produce
// results bit-identical to the unlimited run; skew the splitting cannot
// relieve (every group in one leaf partition) must fail with the clean
// memory error after the bounded recursion, not hang or corrupt state.

// hotStore loads a one-partition table whose rows carry the given keys (one
// row per key occurrence) with a deterministic value column.
func hotStore(t *testing.T, keys []int64) *storage.Store {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "hot",
		Columns: []catalog.Column{
			{Name: "h_k", Type: types.KindInt64},
			{Name: "h_v", Type: types.KindInt64},
		},
	})
	st := storage.NewStore(cat)
	rows := make([][]types.Value, len(keys))
	for i, k := range keys {
		rows[i] = []types.Value{types.Int(k), types.Int(int64(i)%97 + 1)}
	}
	if err := st.Load("hot", rows); err != nil {
		t.Fatal(err)
	}
	return st
}

func hotPlan(t *testing.T, st *storage.Store) logical.Operator {
	t.Helper()
	s := scanOf(t, st, "hot")
	sum := expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.ColumnFor("h_v"))}
	return &logical.GroupBy{
		Input: s,
		Keys:  []*expr.Column{s.ColumnFor("h_k")},
		Aggs:  []logical.AggAssign{{Col: expr.NewColumn("s", sum.ResultType()), Agg: sum}},
	}
}

// TestAggSpillRecursiveReplay drives a hot-key-skewed aggregation through a
// budget a single top-level spill partition cannot fit, so finishing the
// query requires replay to re-partition recursively.
func TestAggSpillRecursiveReplay(t *testing.T) {
	const limit = 96 << 10
	// 24k distinct keys plus a hot key on ~30% of rows: the distinct tail
	// spreads ~3k groups into each of the 8 spill partitions, far above
	// what the budget can hold resident at once during replay.
	var keys []int64
	for i := 0; i < 24000; i++ {
		keys = append(keys, int64(i))
		if i%3 == 0 {
			keys = append(keys, -1)
		}
	}
	st := hotStore(t, keys)

	// Small batches keep the consume phase's per-batch group reservations
	// (which cannot spill mid-request) well under the limit; the replay
	// pressure this test targets is batch-size independent.
	want, err := RunWith(hotPlan(t, st), st, Options{Parallelism: 1, BatchSize: 128})
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}

	// Non-vacuity: one top-level partition's groups (~1/8 of the distinct
	// keys) must overshoot the whole budget, so a non-recursive replay
	// could not have succeeded.
	perPartBytes := int64(24001) * groupMemBytes([]types.Value{types.Int(0)}, 1) / numSpillParts
	if perPartBytes < 2*limit {
		t.Fatalf("corpus too small to force recursive replay: %d bytes/partition vs limit %d", perPartBytes, limit)
	}

	pool := memctl.NewPool(limit, t.TempDir())
	got, err := RunWith(hotPlan(t, st), st, Options{Parallelism: 1, BatchSize: 128, MemPool: pool, QueryText: "hot recursive replay"})
	if err != nil {
		t.Fatalf("limited run: %v", err)
	}
	if got.Metrics.SpilledBytes == 0 || got.Metrics.SpillFiles == 0 {
		t.Fatalf("limited run did not spill (spilled=%d files=%d)", got.Metrics.SpilledBytes, got.Metrics.SpillFiles)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !got.Rows[i][j].Equal(want.Rows[i][j]) {
				t.Fatalf("row %d col %d = %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	if got.Metrics.Storage.BytesScanned != want.Metrics.Storage.BytesScanned ||
		got.Metrics.RowsProcessed != want.Metrics.RowsProcessed ||
		got.Metrics.HashRows != want.Metrics.HashRows {
		t.Fatalf("logical metrics diverged: limited {bytes %d rows %d hash %d} vs unlimited {bytes %d rows %d hash %d}",
			got.Metrics.Storage.BytesScanned, got.Metrics.RowsProcessed, got.Metrics.HashRows,
			want.Metrics.Storage.BytesScanned, want.Metrics.RowsProcessed, want.Metrics.HashRows)
	}
}

// TestAggSpillReplayDepthExhausted builds a pathological key set that
// collapses into a single leaf partition at every re-partitioning level
// (all keys share their low 3*(maxReplayDepth+1) hash bits), so recursion
// cannot spread the load and the replay must surface ErrMemoryExceeded
// cleanly once the depth bound is hit.
func TestAggSpillReplayDepthExhausted(t *testing.T) {
	const limit = 64 << 10
	mask := uint64(1)<<(3*(maxReplayDepth+1)) - 1
	target := vec.HashKey([]types.Value{types.Int(0)}) & mask
	var keys []int64
	kv := []types.Value{types.Int(0)}
	for c, bytes := int64(0), int64(0); bytes < 4*limit; c++ {
		kv[0] = types.Int(c)
		if vec.HashKey(kv)&mask != target {
			continue
		}
		keys = append(keys, c)
		bytes += groupMemBytes(kv, 1)
	}
	st := hotStore(t, keys)

	pool := memctl.NewPool(limit, t.TempDir())
	_, err := RunWith(hotPlan(t, st), st, Options{Parallelism: 1, BatchSize: 128, MemPool: pool, QueryText: "hot depth exhausted"})
	if err == nil {
		t.Fatal("expected ErrMemoryExceeded for un-partitionable skew, got success")
	}
	if !errors.Is(err, memctl.ErrMemoryExceeded) {
		t.Fatalf("err = %v, want ErrMemoryExceeded", err)
	}
}
