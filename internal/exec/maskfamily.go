package exec

import (
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/vec"
)

// familyFactorings counts maskFamilySpec constructions (the conjunct
// flattening, canonicalization and prefix/residual factoring analysis);
// familyInstantiations counts per-goroutine instantiations (closure
// compilation plus scratch). Parallel sinks share one spec across all
// their workers, so factorings must stay independent of Parallelism —
// the compile-count assertion tests read these through CompileStats.
var (
	familyFactorings     atomic.Int64
	familyInstantiations atomic.Int64
)

// CompileCounters is a snapshot of the process-wide expression-compilation
// instrumentation, used by tests asserting that shared templates are built
// once per operator rather than once per worker.
type CompileCounters struct {
	// MaskFamilyFactorings counts mask-set factoring analyses (shared
	// across a sink's workers).
	MaskFamilyFactorings int64
	// MaskFamilyInstantiations counts per-goroutine family instantiations
	// (closure compilation and scratch; these legitimately scale with
	// worker count because compiled kernels own scratch state).
	MaskFamilyInstantiations int64
}

// CompileStats returns the current compilation counters.
func CompileStats() CompileCounters {
	return CompileCounters{
		MaskFamilyFactorings:     familyFactorings.Load(),
		MaskFamilyInstantiations: familyInstantiations.Load(),
	}
}

// maskFamily evaluates a fused aggregation's whole set of FILTER masks in
// one pass per batch. The fusion rewrite (§III.E) tightens every sibling
// aggregate's mask with the same compensating conjuncts, so the family
// shares structure by construction: each mask flattens into conjuncts, the
// conjuncts common to every mask form a shared prefix, and what is left is
// a small per-mask residual.
//
// Per batch the prefix runs progressively — each prefix conjunct is
// evaluated only over the rows every earlier one passed, truth-only (a
// mask admits a row iff it is non-NULL TRUE, so conjunct combination needs
// only TRUE bits; three-valued logic survives inside each conjunct's
// bitmap compilation where NOT/IS NULL need it). Residual conjuncts are
// deduplicated across masks and evaluated once over the prefix-survivor
// sub-batch, then scattered back to full-length bitmaps. Each mask's final
// truth is its residual bitmaps word-ANDed onto the prefix survivors.
// Against the naive path (one batchEvaluator per distinct mask) the shared
// prefix is evaluated once instead of nMasks times, rows it rejects never
// reach any residual, and no intermediate materializes a []types.Value.
//
// A single-mask family degenerates to progressive conjunct evaluation with
// bitmap kernels — filterIter uses exactly that, so the filter operator
// and the aggregation masks share one evaluation engine.
//
// Like batchEvaluators, a family owns scratch state and is bound to one
// operator instance on one goroutine. Truth bitmaps returned by eval are
// valid until the next eval call.
type maskFamily struct {
	nMasks int

	prefixFns []bitmapFn
	residFns  []bitmapFn
	// maskResids[m] indexes into residFns: the residual conjuncts mask m
	// still requires beyond the shared prefix.
	maskResids [][]int
	// residShare[r] is how many masks carry residual r. Pairwise fusion
	// tightens sibling masks with the same compensating conjuncts, so
	// residuals shared by a subset of the family (but not all of it) are the
	// common case in multi-way fusions; each is evaluated once per batch
	// instead of residShare times.
	residShare []int

	// scratch, reused across batches
	condBm      vec.Bitmap
	prefixTruth vec.Bitmap
	residTruth  []vec.Bitmap
	maskTruth   []vec.Bitmap
	truths      []*vec.Bitmap
	logi        []int // surviving logical row indices in the input batch
	phys        []int // their physical row indices (b.RowIdx)
	idxScratch  []int

	// prefixHits counts per-mask row evaluations the factoring skipped:
	// rows eliminated by the shared prefix times the family size, plus
	// survivor rows times the extra masks each shared residual would have
	// re-evaluated them under. Stays zero for single-mask families
	// (nothing is shared).
	prefixHits int64
}

// maskFamilySpec is the goroutine-shareable half of a mask family: the
// conjunct flattening, canonicalization, and prefix/residual factoring over
// one input layout. A parallel sink builds the spec once and every worker
// instantiates it, so the O(masks × conjuncts) analysis (and its Canonical
// string rendering) is not repeated per worker. The spec is immutable after
// construction; instantiate() compiles the bitmap closures — which own
// scratch and are goroutine-bound — into a fresh maskFamily per caller.
type maskFamilySpec struct {
	nMasks int
	layout map[expr.ColumnID]int
	// prefixExprs are conjuncts carried by every mask; residExprs are the
	// deduplicated remainder.
	prefixExprs []expr.Expr
	residExprs  []expr.Expr
	maskResids  [][]int
	residShare  []int
}

// newMaskFamilySpec factors a set of masks over one input layout. Masks
// should be canonical (expr.Canonical) so that shared conjuncts dedup by
// their rendered form; filterIter passes raw predicates, which only costs
// missed sharing, never correctness.
func newMaskFamilySpec(masks []expr.Expr, layout map[expr.ColumnID]int) *maskFamilySpec {
	familyFactorings.Add(1)
	type conjunct struct {
		e       expr.Expr
		inMasks int
	}
	var order []string
	byKey := make(map[string]*conjunct)
	maskKeys := make([][]string, len(masks))
	for mi, m := range masks {
		seen := make(map[string]bool)
		for _, c := range expr.Conjuncts(m) {
			key := expr.Canonical(c).String()
			if seen[key] {
				continue
			}
			seen[key] = true
			cj := byKey[key]
			if cj == nil {
				cj = &conjunct{e: c}
				byKey[key] = cj
				order = append(order, key)
			}
			cj.inMasks++
			maskKeys[mi] = append(maskKeys[mi], key)
		}
	}
	sp := &maskFamilySpec{nMasks: len(masks), layout: layout}
	residIdx := make(map[string]int)
	for _, key := range order {
		cj := byKey[key]
		// A conjunct carried by every mask is prefix; note a mask with zero
		// conjuncts (canonical TRUE) empties the prefix entirely, which is
		// exactly right — nothing is shared by all.
		if cj.inMasks == len(masks) {
			sp.prefixExprs = append(sp.prefixExprs, cj.e)
		} else {
			residIdx[key] = len(sp.residExprs)
			sp.residExprs = append(sp.residExprs, cj.e)
		}
	}
	sp.maskResids = make([][]int, len(masks))
	sp.residShare = make([]int, len(sp.residExprs))
	for mi, keys := range maskKeys {
		for _, key := range keys {
			if ri, ok := residIdx[key]; ok {
				sp.maskResids[mi] = append(sp.maskResids[mi], ri)
				sp.residShare[ri]++
			}
		}
	}
	return sp
}

// instantiate compiles the spec's conjuncts into a maskFamily with its own
// scratch, bound to the calling goroutine's operator instance. Per-mask
// residual indexing and share counts alias the spec (read-only after
// construction).
func (sp *maskFamilySpec) instantiate() (*maskFamily, error) {
	familyInstantiations.Add(1)
	mf := &maskFamily{
		nMasks:     sp.nMasks,
		maskResids: sp.maskResids,
		residShare: sp.residShare,
	}
	for _, e := range sp.prefixExprs {
		fn, err := compileBitmapExpr(e, sp.layout)
		if err != nil {
			return nil, err
		}
		mf.prefixFns = append(mf.prefixFns, fn)
	}
	for _, e := range sp.residExprs {
		fn, err := compileBitmapExpr(e, sp.layout)
		if err != nil {
			return nil, err
		}
		mf.residFns = append(mf.residFns, fn)
	}
	mf.residTruth = make([]vec.Bitmap, len(mf.residFns))
	mf.maskTruth = make([]vec.Bitmap, sp.nMasks)
	mf.truths = make([]*vec.Bitmap, sp.nMasks)
	for i := range mf.maskTruth {
		mf.truths[i] = &mf.maskTruth[i]
	}
	return mf, nil
}

// newMaskFamily factors and compiles in one step, for single-worker call
// sites that have no spec to share.
func newMaskFamily(masks []expr.Expr, layout map[expr.ColumnID]int) (*maskFamily, error) {
	return newMaskFamilySpec(masks, layout).instantiate()
}

// prefixLen reports how many shared conjuncts were factored out.
func (mf *maskFamily) prefixLen() int { return len(mf.prefixFns) }

// hits returns the cumulative prefix-elimination counter.
func (mf *maskFamily) hits() int64 { return mf.prefixHits }

// eval computes every mask's truth bitmap over b's active rows in one
// pass. The returned bitmaps are truth-only (bit i set iff mask m admits
// logical row i) and remain valid until the next eval call.
func (mf *maskFamily) eval(b *vec.Batch) []*vec.Bitmap {
	n := b.Len()

	// Progressive shared prefix: survivors shrink conjunct by conjunct, and
	// every later conjunct (and every residual) is evaluated only over
	// them. prefixAll tracks the "no prefix yet" state where survivors are
	// implicitly all rows and no selection has been materialized.
	prefixAll := true
	sub := b
	for _, fn := range mf.prefixFns {
		fn(sub, &mf.condBm)
		if prefixAll {
			mf.logi = mf.condBm.AppendTrue(mf.logi[:0])
			mf.phys = mf.phys[:0]
			for _, i := range mf.logi {
				mf.phys = append(mf.phys, b.RowIdx(i))
			}
			prefixAll = false
		} else {
			mf.idxScratch = mf.condBm.AppendTrue(mf.idxScratch[:0])
			for k, j := range mf.idxScratch {
				mf.logi[k] = mf.logi[j]
				mf.phys[k] = mf.phys[j]
			}
			mf.logi = mf.logi[:len(mf.idxScratch)]
			mf.phys = mf.phys[:len(mf.idxScratch)]
		}
		if len(mf.logi) == 0 {
			break
		}
		sub = b.WithSel(mf.phys)
	}

	mf.prefixTruth.Reset(n)
	if prefixAll {
		mf.prefixTruth.FillTrue()
	} else {
		for _, i := range mf.logi {
			mf.prefixTruth.SetTrue(i)
		}
		if mf.nMasks > 1 {
			mf.prefixHits += int64(n-len(mf.logi)) * int64(mf.nMasks)
		}
	}

	// Residual conjuncts: each distinct residual is evaluated once over the
	// survivor sub-batch and scattered back to input-batch positions.
	// Truth-only — AndTruthWith below reads only TRUE planes.
	survivors := n
	if !prefixAll {
		survivors = len(mf.logi)
	}
	for _, share := range mf.residShare {
		if share > 1 && survivors > 0 {
			mf.prefixHits += int64(share-1) * int64(survivors)
		}
	}
	for ri := range mf.residFns {
		rt := &mf.residTruth[ri]
		if prefixAll {
			mf.residFns[ri](b, rt)
			continue
		}
		rt.Reset(n)
		if len(mf.logi) == 0 {
			continue
		}
		mf.residFns[ri](sub, &mf.condBm)
		mf.idxScratch = mf.condBm.AppendTrue(mf.idxScratch[:0])
		for _, j := range mf.idxScratch {
			rt.SetTrue(mf.logi[j])
		}
	}

	for mi := range mf.maskTruth {
		mt := &mf.maskTruth[mi]
		mt.CopyFrom(&mf.prefixTruth)
		for _, ri := range mf.maskResids[mi] {
			mt.AndTruthWith(&mf.residTruth[ri])
		}
	}
	return mf.truths
}
