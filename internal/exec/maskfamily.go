package exec

import (
	"repro/internal/expr"
	"repro/internal/vec"
)

// maskFamily evaluates a fused aggregation's whole set of FILTER masks in
// one pass per batch. The fusion rewrite (§III.E) tightens every sibling
// aggregate's mask with the same compensating conjuncts, so the family
// shares structure by construction: each mask flattens into conjuncts, the
// conjuncts common to every mask form a shared prefix, and what is left is
// a small per-mask residual.
//
// Per batch the prefix runs progressively — each prefix conjunct is
// evaluated only over the rows every earlier one passed, truth-only (a
// mask admits a row iff it is non-NULL TRUE, so conjunct combination needs
// only TRUE bits; three-valued logic survives inside each conjunct's
// bitmap compilation where NOT/IS NULL need it). Residual conjuncts are
// deduplicated across masks and evaluated once over the prefix-survivor
// sub-batch, then scattered back to full-length bitmaps. Each mask's final
// truth is its residual bitmaps word-ANDed onto the prefix survivors.
// Against the naive path (one batchEvaluator per distinct mask) the shared
// prefix is evaluated once instead of nMasks times, rows it rejects never
// reach any residual, and no intermediate materializes a []types.Value.
//
// A single-mask family degenerates to progressive conjunct evaluation with
// bitmap kernels — filterIter uses exactly that, so the filter operator
// and the aggregation masks share one evaluation engine.
//
// Like batchEvaluators, a family owns scratch state and is bound to one
// operator instance on one goroutine. Truth bitmaps returned by eval are
// valid until the next eval call.
type maskFamily struct {
	nMasks int

	prefixFns []bitmapFn
	residFns  []bitmapFn
	// maskResids[m] indexes into residFns: the residual conjuncts mask m
	// still requires beyond the shared prefix.
	maskResids [][]int
	// residShare[r] is how many masks carry residual r. Pairwise fusion
	// tightens sibling masks with the same compensating conjuncts, so
	// residuals shared by a subset of the family (but not all of it) are the
	// common case in multi-way fusions; each is evaluated once per batch
	// instead of residShare times.
	residShare []int

	// scratch, reused across batches
	condBm      vec.Bitmap
	prefixTruth vec.Bitmap
	residTruth  []vec.Bitmap
	maskTruth   []vec.Bitmap
	truths      []*vec.Bitmap
	logi        []int // surviving logical row indices in the input batch
	phys        []int // their physical row indices (b.RowIdx)
	idxScratch  []int

	// prefixHits counts per-mask row evaluations the factoring skipped:
	// rows eliminated by the shared prefix times the family size, plus
	// survivor rows times the extra masks each shared residual would have
	// re-evaluated them under. Stays zero for single-mask families
	// (nothing is shared).
	prefixHits int64
}

// newMaskFamily factors a set of masks over one input layout. Masks should
// be canonical (expr.Canonical) so that shared conjuncts dedup by their
// rendered form; filterIter passes raw predicates, which only costs missed
// sharing, never correctness.
func newMaskFamily(masks []expr.Expr, layout map[expr.ColumnID]int) (*maskFamily, error) {
	type conjunct struct {
		e       expr.Expr
		inMasks int
	}
	var order []string
	byKey := make(map[string]*conjunct)
	maskKeys := make([][]string, len(masks))
	for mi, m := range masks {
		seen := make(map[string]bool)
		for _, c := range expr.Conjuncts(m) {
			key := expr.Canonical(c).String()
			if seen[key] {
				continue
			}
			seen[key] = true
			cj := byKey[key]
			if cj == nil {
				cj = &conjunct{e: c}
				byKey[key] = cj
				order = append(order, key)
			}
			cj.inMasks++
			maskKeys[mi] = append(maskKeys[mi], key)
		}
	}
	mf := &maskFamily{nMasks: len(masks)}
	residIdx := make(map[string]int)
	for _, key := range order {
		cj := byKey[key]
		fn, err := compileBitmapExpr(cj.e, layout)
		if err != nil {
			return nil, err
		}
		// A conjunct carried by every mask is prefix; note a mask with zero
		// conjuncts (canonical TRUE) empties the prefix entirely, which is
		// exactly right — nothing is shared by all.
		if cj.inMasks == len(masks) {
			mf.prefixFns = append(mf.prefixFns, fn)
		} else {
			residIdx[key] = len(mf.residFns)
			mf.residFns = append(mf.residFns, fn)
		}
	}
	mf.maskResids = make([][]int, len(masks))
	mf.residShare = make([]int, len(mf.residFns))
	for mi, keys := range maskKeys {
		for _, key := range keys {
			if ri, ok := residIdx[key]; ok {
				mf.maskResids[mi] = append(mf.maskResids[mi], ri)
				mf.residShare[ri]++
			}
		}
	}
	mf.residTruth = make([]vec.Bitmap, len(mf.residFns))
	mf.maskTruth = make([]vec.Bitmap, len(masks))
	mf.truths = make([]*vec.Bitmap, len(masks))
	for i := range mf.maskTruth {
		mf.truths[i] = &mf.maskTruth[i]
	}
	return mf, nil
}

// prefixLen reports how many shared conjuncts were factored out.
func (mf *maskFamily) prefixLen() int { return len(mf.prefixFns) }

// hits returns the cumulative prefix-elimination counter.
func (mf *maskFamily) hits() int64 { return mf.prefixHits }

// eval computes every mask's truth bitmap over b's active rows in one
// pass. The returned bitmaps are truth-only (bit i set iff mask m admits
// logical row i) and remain valid until the next eval call.
func (mf *maskFamily) eval(b *vec.Batch) []*vec.Bitmap {
	n := b.Len()

	// Progressive shared prefix: survivors shrink conjunct by conjunct, and
	// every later conjunct (and every residual) is evaluated only over
	// them. prefixAll tracks the "no prefix yet" state where survivors are
	// implicitly all rows and no selection has been materialized.
	prefixAll := true
	sub := b
	for _, fn := range mf.prefixFns {
		fn(sub, &mf.condBm)
		if prefixAll {
			mf.logi = mf.condBm.AppendTrue(mf.logi[:0])
			mf.phys = mf.phys[:0]
			for _, i := range mf.logi {
				mf.phys = append(mf.phys, b.RowIdx(i))
			}
			prefixAll = false
		} else {
			mf.idxScratch = mf.condBm.AppendTrue(mf.idxScratch[:0])
			for k, j := range mf.idxScratch {
				mf.logi[k] = mf.logi[j]
				mf.phys[k] = mf.phys[j]
			}
			mf.logi = mf.logi[:len(mf.idxScratch)]
			mf.phys = mf.phys[:len(mf.idxScratch)]
		}
		if len(mf.logi) == 0 {
			break
		}
		sub = b.WithSel(mf.phys)
	}

	mf.prefixTruth.Reset(n)
	if prefixAll {
		mf.prefixTruth.FillTrue()
	} else {
		for _, i := range mf.logi {
			mf.prefixTruth.SetTrue(i)
		}
		if mf.nMasks > 1 {
			mf.prefixHits += int64(n-len(mf.logi)) * int64(mf.nMasks)
		}
	}

	// Residual conjuncts: each distinct residual is evaluated once over the
	// survivor sub-batch and scattered back to input-batch positions.
	// Truth-only — AndTruthWith below reads only TRUE planes.
	survivors := n
	if !prefixAll {
		survivors = len(mf.logi)
	}
	for _, share := range mf.residShare {
		if share > 1 && survivors > 0 {
			mf.prefixHits += int64(share-1) * int64(survivors)
		}
	}
	for ri := range mf.residFns {
		rt := &mf.residTruth[ri]
		if prefixAll {
			mf.residFns[ri](b, rt)
			continue
		}
		rt.Reset(n)
		if len(mf.logi) == 0 {
			continue
		}
		mf.residFns[ri](sub, &mf.condBm)
		mf.idxScratch = mf.condBm.AppendTrue(mf.idxScratch[:0])
		for _, j := range mf.idxScratch {
			rt.SetTrue(mf.logi[j])
		}
	}

	for mi := range mf.maskTruth {
		mt := &mf.maskTruth[mi]
		mt.CopyFrom(&mf.prefixTruth)
		for _, ri := range mf.maskResids[mi] {
			mt.AndTruthWith(&mf.residTruth[ri])
		}
	}
	return mf.truths
}
