package exec

import (
	"time"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
)

// Cross-query shared execution support (internal/xfuse). A fused plan built
// by folding several clients' plans through core.Fuse executes exactly once;
// each client subscribes to the fused root with a compensating predicate
// (its Fuse-produced L/R conjuncts, which reconstruct "my rows" out of the
// union) and the positions of its output columns in the fused schema. The
// demux evaluates every subscriber's predicate per root batch through one
// mask family — the same shared-prefix factoring kernel the fused
// aggregation masks use — so N subscribers cost one pass, not N.

// SharedSub is one client's subscription to a fused plan's output.
type SharedSub struct {
	// Comp is the compensating predicate over the fused root schema
	// selecting this client's rows; nil means every row qualifies.
	Comp expr.Expr
	// Cols are the client's output column positions in the fused root
	// schema, in the client's own output order.
	Cols []int
}

// RunShared builds and drains a fused plan once, routing each surviving row
// to every subscriber whose compensating predicate admits it. The returned
// Result carries the fused run's physical metrics (its Rows are nil — the
// per-subscriber slices are the output); perSub[i] holds subscriber i's
// rows, projected to its columns, in fused scan order — which for chains
// preserved by Fuse is exactly the client's solo row order.
func RunShared(plan logical.Operator, store *storage.Store, opts Options, subs []SharedSub) (*Result, [][]Row, error) {
	opts = opts.withDefaults()
	ex := newExecutor(store, opts)
	defer ex.close()
	start := time.Now()

	masks := make([]expr.Expr, len(subs))
	for i, s := range subs {
		if s.Comp == nil {
			masks[i] = expr.TrueExpr()
		} else {
			masks[i] = s.Comp
		}
	}
	spec := newMaskFamilySpec(masks, layoutOf(plan))
	fam, err := spec.instantiate()
	if err != nil {
		return nil, nil, err
	}
	if !opts.NoSkip && len(spec.prefixExprs) > 0 {
		// The factoring's shared prefix is the predicate intersection every
		// batched client agrees on — exactly the ISSUE's "prune once on
		// behalf of the whole batch" opportunity. Stage it for the plan's
		// scan leaf before building.
		ex.feedPrefixSkip(plan, spec.prefixExprs)
	}

	it, err := ex.build(plan)
	if err != nil {
		return nil, nil, err
	}
	perSub := make([][]Row, len(subs))
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, nil, err
		}
		if b == nil {
			break
		}
		n := b.Len()
		truths := fam.eval(b)
		for mi := range subs {
			t := truths[mi]
			cols := subs[mi].Cols
			for i := 0; i < n; i++ {
				if !t.True(i) {
					continue
				}
				phys := b.RowIdx(i)
				row := make(Row, len(cols))
				for j, c := range cols {
					row[j] = b.Cols[c][phys]
				}
				perSub[mi] = append(perSub[mi], row)
			}
		}
	}
	ex.close()
	ex.metrics.addMaskPrefixHits(fam.hits())
	ex.metrics.Elapsed = time.Since(start)
	return &Result{Columns: plan.Schema(), Metrics: *ex.metrics}, perSub, nil
}

// ChainShape is the as-if-solo execution footprint of a fusible chain,
// used by internal/xfuse to attribute logical metrics to a client whose
// query actually ran inside a fused plan. Storage and PrunedRows come from
// replaying the solo plan's partition pruning against live partition
// metadata — the identical ScanPartitions call the solo run would make,
// without decoding anything; the stage counts drive the RowsProcessed
// charge schedule (SoloRowsProcessed).
type ChainShape struct {
	// Storage is what the solo scan would charge (bytes/rows scanned over
	// the partitions surviving the solo plan's pruner).
	Storage storage.Metrics
	// PrunedRows is the row count of those partitions — the solo chain's
	// scan output cardinality.
	PrunedRows int64
	// NumStages is the number of fused chain stages (filters + projects)
	// the solo push pipeline would run.
	NumStages int
	// FilterPos is the index of the chain's filter stage in source-to-sink
	// order, or -1 when pruning consumed the whole predicate (or there was
	// none): every row surviving the scan then survives the chain.
	FilterPos int
}

// AnalyzeChain recognizes root as a fusible chain (the same recognition the
// push pipeline uses, including partition-prune peeling) and returns its
// as-if-solo shape. ok=false when root is not such a chain.
func AnalyzeChain(root logical.Operator, store *storage.Store) (*ChainShape, bool, error) {
	cs, ok := compileChain(root)
	if !ok {
		return nil, false, nil
	}
	sh := &ChainShape{NumStages: len(cs.stages), FilterPos: -1}
	for si := range cs.stages {
		if cs.stages[si].kind == stageFilter {
			sh.FilterPos = si
			break
		}
	}
	parts, err := store.ScanPartitions(cs.scan.Table.Name, cs.scan.ColNames, cs.prune, &sh.Storage)
	if err != nil {
		return nil, true, err
	}
	for _, p := range parts {
		sh.PrunedRows += int64(p.NumRows)
	}
	return sh, true, nil
}

// SoloRowsProcessed is the RowsProcessed a solo run of the chain would
// charge, given survivors rows passing its filter: the scan charges its
// full output, every stage up to and including the filter charges the scan
// cardinality, and every stage above the filter charges the survivors.
// This matches the pull and push engines exactly (they charge identically
// on totally-consumed chains).
func (sh *ChainShape) SoloRowsProcessed(survivors int64) int64 {
	n := sh.PrunedRows
	total := n // scan output charge
	for si := 0; si < sh.NumStages; si++ {
		if sh.FilterPos >= 0 && si > sh.FilterPos {
			total += survivors
		} else {
			total += n
		}
	}
	return total
}
