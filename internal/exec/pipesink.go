package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/scanshare"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// Pipeline sinks: blocking operators that accept a fused chain's pushed
// per-morsel sub-batches directly rather than pulling through the
// BatchIterator facade. Two sinks exist — scalar (no GROUP BY) aggregation
// and sort-run generation. Both preserve first-seen ordering by consuming
// morsel results strictly in morsel order, charge rows exactly where the
// pull operators do, and keep memctl accounting and the spill paths intact.

// serialChain builds the serial fused loop over an already-resolved scan
// source — the sinks' fallback when the scan yields at most one morsel. The
// caller has committed to the scan (BytesScanned is charged), so this path
// must be taken rather than falling back to the pull builders.
func (ex *executor) serialChain(cs *chainSpec, parts []*storage.Partition, share *scanshare.Scan) (BatchIterator, error) {
	stages, err := newPipeStages(cs, ex.opts.NaiveMasks)
	if err != nil {
		return nil, err
	}
	if share != nil {
		ex.closers = append(ex.closers, share.Close)
	}
	ctrl, _ := ex.lookupScanCtrl(cs.scan)
	src := &scanIter{cols: cs.scan.ColNames, parts: parts, batchSize: ex.opts.BatchSize, m: ex.metrics, share: share, ctrl: ctrl}
	return &chainIter{src: src, stages: stages, m: ex.metrics, co: batchCoalescer{target: ex.opts.BatchSize}}, nil
}

// serialScalarGroupBy is the serial scalar-aggregation tail of buildGroupBy,
// factored out so the sink's one-morsel fallback can reuse it.
func (ex *executor) serialScalarGroupBy(g *logical.GroupBy, in BatchIterator) (BatchIterator, error) {
	acc, err := newGroupAccumulator(g, layoutOf(g.Input), nil, ex.tracker, ex.mempool.SpillDir(), ex.opts.NaiveMasks)
	if err != nil {
		return nil, err
	}
	return &groupByIter{
		in: in, acc: acc, scalar: true, batchSize: ex.opts.BatchSize, m: ex.metrics,
	}, nil
}

// buildScalarAggSink compiles a scalar aggregation over a fusible chain into
// a push pipeline: each worker runs the fused chain over its claimed morsel
// and folds the surviving rows into per-worker partial aggregate states.
// Order-insensitive aggregates (COUNT, MIN, MAX, integer SUM) merge partials
// in fixed morsel order; order-sensitive ones (AVG, float SUM) instead ship
// their masked argument values and replay them serially in morsel order, so
// float sums stay bit-for-bit identical to the serial accumulation.
func (ex *executor) buildScalarAggSink(g *logical.GroupBy) (BatchIterator, bool, error) {
	cs, ok := compileChain(g.Input)
	if !ok {
		return nil, false, nil
	}
	// Validate chain and aggregate compilation before committing to the
	// scan: once scanSource charges BytesScanned the sink must be used. The
	// spec survives into the parallel sink so the validation worker's mask
	// factoring is reused by every execution worker.
	spec := &scalarWorkerSpec{g: g, cs: cs, naiveMasks: ex.opts.NaiveMasks}
	if _, err := spec.newWorker(); err != nil {
		return nil, true, err
	}
	parts, share, err := ex.scanSource(cs.scan, cs.prune)
	if err != nil {
		return nil, true, err
	}
	ex.configureChainSkip(cs)
	ex.metrics.addFusedPipelines(1)
	morsels := buildMorsels(parts, morselTarget(parts, ex.opts.BatchSize, ex.opts.Parallelism))
	if len(morsels) <= 1 {
		in, err := ex.serialChain(cs, parts, share)
		if err != nil {
			return nil, true, err
		}
		it, err := ex.serialScalarGroupBy(g, in)
		return it, true, err
	}
	it, err := newScalarAggIter(ex, spec, morsels, share)
	if err != nil {
		return nil, true, err
	}
	ex.closers = append(ex.closers, it.run.close)
	if share != nil {
		ex.closers = append(ex.closers, share.Close)
	}
	return it, true, nil
}

// scalarWorker is one worker's chain stages plus aggregate evaluation state
// (evaluators own scratch buffers and are bound to one goroutine).
type scalarWorker struct {
	stages    []pipeStage
	aggs      *compiledAggs
	family    *maskFamily
	maskEvs   []*batchEvaluator
	nMasks    int
	argEvs    []*batchEvaluator
	sensitive []bool

	// per-batch scratch
	maskLog [][]int
	maskSub []*vec.Batch
}

// scalarWorkerSpec builds scalarWorkers for one sink, sharing the
// worker-independent analysis: the chain's stage factoring lives on cs
// (stageSpec.famSpec) and the aggregate mask-family factoring is cached here
// after the first worker builds it. Workers are constructed sequentially on
// the coordinator goroutine, so the cache needs no lock. Evaluators and
// compiled bitmap closures own scratch and stay per-worker.
type scalarWorkerSpec struct {
	g          *logical.GroupBy
	cs         *chainSpec
	naiveMasks bool
	famSpec    *maskFamilySpec
}

func (sp *scalarWorkerSpec) newWorker() (*scalarWorker, error) {
	g := sp.g
	stages, err := newPipeStages(sp.cs, sp.naiveMasks)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(g.Input)
	aggs, err := compileAggs(g.Aggs, layout)
	if err != nil {
		return nil, err
	}
	nMasks := len(aggs.maskAst)
	var family *maskFamily
	var maskEvs []*batchEvaluator
	if sp.naiveMasks {
		maskEvs = make([]*batchEvaluator, nMasks)
		for i, ast := range aggs.maskAst {
			if maskEvs[i], err = newBatchEvaluator(ast, layout); err != nil {
				return nil, err
			}
		}
	} else if nMasks > 0 {
		// compileAggs derives maskAst deterministically from g.Aggs, so the
		// factoring cached off the first worker's ASTs is valid for them all.
		if sp.famSpec == nil {
			sp.famSpec = newMaskFamilySpec(aggs.maskAst, layout)
		}
		if family, err = sp.famSpec.instantiate(); err != nil {
			return nil, err
		}
	}
	argEvs := make([]*batchEvaluator, len(g.Aggs))
	sensitive := make([]bool, len(g.Aggs))
	for i, a := range g.Aggs {
		if argEvs[i], err = newBatchEvaluator(a.Agg.Arg, layout); err != nil {
			return nil, err
		}
		sensitive[i] = orderSensitive(a.Agg)
	}
	return &scalarWorker{
		stages: stages, aggs: aggs, family: family, maskEvs: maskEvs, nMasks: nMasks,
		argEvs: argEvs, sensitive: sensitive,
		maskLog: make([][]int, nMasks), maskSub: make([]*vec.Batch, nMasks),
	}, nil
}

// sensChunk is one batch's shipped argument values for an order-sensitive
// aggregate, reduced to exactly what aggState.add consumes for SUM/AVG: the
// float contribution (float64(v.I) for integer-kind values — converted
// worker-side, so the replayed additions are the very same floats the serial
// order would add) and the null flag. Chunks avoid re-growing one large
// slice batch after batch.
type sensChunk struct {
	f    []float64
	null []bool
}

// scalarMorselOut is one morsel's partial aggregation: merged states for the
// insensitive aggregates, shipped argument chunks for the sensitive ones.
type scalarMorselOut struct {
	states []aggState
	sens   [][]sensChunk
	rows   int64
	err    error
}

// consume folds one chain-output batch into the morsel's partials. Mask
// evaluation mirrors the group accumulator: the family kernel computes every
// distinct mask's truth bitmap in one pass, the NaiveMasks baseline one
// value vector per mask. Shipped values are copied out of evaluator scratch.
func (sw *scalarWorker) consume(b *vec.Batch, out *scalarMorselOut) {
	n := b.Len()
	var truths []*vec.Bitmap
	if sw.family != nil {
		truths = sw.family.eval(b)
	}
	for mi := 0; mi < sw.nMasks; mi++ {
		mlog := sw.maskLog[mi][:0]
		phys := make([]int, 0, n)
		if truths != nil {
			t := truths[mi]
			for i := 0; i < n; i++ {
				if t.True(i) {
					mlog = append(mlog, i)
					phys = append(phys, b.RowIdx(i))
				}
			}
		} else {
			vals := sw.maskEvs[mi].eval(b)
			for i := 0; i < n; i++ {
				if vals[i].IsTrue() {
					mlog = append(mlog, i)
					phys = append(phys, b.RowIdx(i))
				}
			}
		}
		sw.maskLog[mi] = mlog
		sw.maskSub[mi] = b.WithSel(phys)
	}
	for ai := range sw.aggs.aggs {
		a := &sw.aggs.aggs[ai]
		sub := b
		if a.maskIdx >= 0 {
			if len(sw.maskLog[a.maskIdx]) == 0 {
				continue
			}
			sub = sw.maskSub[a.maskIdx]
		}
		count := sub.Len()
		var vals []types.Value
		if sw.argEvs[ai] != nil {
			vals = sw.argEvs[ai].eval(sub)
		}
		if sw.sensitive[ai] {
			ck := sensChunk{f: make([]float64, len(vals)), null: make([]bool, len(vals))}
			for j, v := range vals {
				if v.Null {
					ck.null[j] = true
				} else if v.Kind == types.KindFloat64 {
					ck.f[j] = v.F
				} else {
					ck.f[j] = float64(v.I)
				}
			}
			out.sens[ai] = append(out.sens[ai], ck)
			continue
		}
		st := &out.states[ai]
		fn := a.agg.Fn
		if vals == nil {
			for j := 0; j < count; j++ {
				st.add(fn, types.Value{})
			}
		} else {
			for j := range vals {
				st.add(fn, vals[j])
			}
		}
	}
}

// scalarAggIter drives the scalar-aggregation sink: morsel-ordered partial
// delivery, deterministic merge, one output row.
type scalarAggIter struct {
	run       *orderedRun[scalarMorselOut]
	morsels   []morsel
	cols      []string
	batchSize int
	m         *Metrics
	pool      *workerPool
	share     *scanshare.Scan
	ctrl      *skipController
	workers   []*scalarWorker
	aggCalls  []expr.AggCall
	sensitive []bool

	built bool
	out   *vec.Batch
}

func newScalarAggIter(ex *executor, spec *scalarWorkerSpec, morsels []morsel, share *scanshare.Scan) (*scalarAggIter, error) {
	g := spec.g
	run := newOrderedRun[scalarMorselOut](len(morsels), ex.opts.Parallelism)
	workers := make([]*scalarWorker, run.workers)
	for w := range workers {
		sw, err := spec.newWorker()
		if err != nil {
			return nil, err
		}
		workers[w] = sw
	}
	aggCalls := make([]expr.AggCall, len(g.Aggs))
	sensitive := make([]bool, len(g.Aggs))
	for i, a := range g.Aggs {
		aggCalls[i] = a.Agg
		sensitive[i] = orderSensitive(a.Agg)
	}
	ctrl, _ := ex.lookupScanCtrl(spec.cs.scan)
	return &scalarAggIter{
		run: run, morsels: morsels, cols: spec.cs.scan.ColNames,
		batchSize: ex.opts.BatchSize, m: ex.metrics, pool: ex.pool, share: share,
		ctrl: ctrl, workers: workers, aggCalls: aggCalls, sensitive: sensitive,
	}, nil
}

func (it *scalarAggIter) work(w, i int) scalarMorselOut {
	// Decode, fused stages and accumulation are the CPU work; they run under
	// one shared pool slot like the pull scan's morsel decode. All metric
	// charges happen worker-side (order-independent sums; the sink always
	// drains totally, so totals match the pull path exactly).
	it.pool.acquire()
	defer it.pool.release()
	sw := it.workers[w]
	out := scalarMorselOut{
		states: make([]aggState, len(it.aggCalls)),
		sens:   make([][]sensChunk, len(it.aggCalls)),
	}
	var src []*vec.Batch
	var err error
	co := batchCoalescer{target: it.batchSize}
	push := func(cb *vec.Batch) {
		it.m.addProcessed(int64(cb.Len()))
		it.m.addPipelineBatches(1)
		ob := runStages(sw.stages, cb, it.m)
		if ob == nil || ob.Len() == 0 {
			return
		}
		it.m.addProcessed(int64(ob.Len())) // the aggregation's input charge
		out.rows += int64(ob.Len())
		sw.consume(ob, &out)
	}
	for _, p := range it.morsels[i].parts {
		if it.ctrl.shouldPrune(p) {
			// The sink drains totally, so the as-if-scanned recharge can
			// happen worker-side like every other charge here.
			it.ctrl.recharge(int64(p.NumRows))
			continue
		}
		if src, err = partitionBatches(p, it.cols, it.batchSize, it.share, it.run.stop, it.m, src[:0]); err != nil {
			return scalarMorselOut{err: err}
		}
		for _, b := range src {
			if cb := co.add(b); cb != nil {
				push(cb)
			}
		}
	}
	if cb := co.flush(); cb != nil {
		push(cb)
	}
	return out
}

func (it *scalarAggIter) NextBatch() (*vec.Batch, error) {
	if it.built {
		b := it.out
		it.out = nil
		return b, nil
	}
	it.built = true
	it.run.start(it.work)
	final := make([]aggState, len(it.aggCalls))
	var totalRows int64
	for {
		res, ok := it.run.recv()
		if !ok {
			break
		}
		if res.err != nil {
			it.run.close()
			return nil, res.err
		}
		totalRows += res.rows
		for ai := range final {
			if it.sensitive[ai] {
				// The replay is aggState.add for SUM/AVG unrolled over the
				// shipped chunks: identical additions in identical order.
				st := &final[ai]
				for _, ck := range res.sens[ai] {
					for j := range ck.f {
						if ck.null[j] {
							continue
						}
						st.count++
						st.seen = true
						st.sumF += ck.f[j]
					}
				}
			} else {
				final[ai].merge(it.aggCalls[ai].Fn, &res.states[ai])
			}
		}
	}
	it.run.close()
	// The serial accumulator creates its one scalar group on the first
	// consumed row and charges it to HashRows; empty input emits the default
	// row uncounted.
	if totalRows > 0 {
		it.m.addHashRows(1)
	}
	for _, sw := range it.workers {
		if sw.family != nil {
			it.m.addMaskPrefixHits(sw.family.hits())
		}
	}
	bl := vec.NewBuilder(len(it.aggCalls), 1)
	row := make(Row, len(it.aggCalls))
	for ai := range it.aggCalls {
		row[ai] = final[ai].result(it.aggCalls[ai])
	}
	bl.Append(row)
	return bl.Flush(), nil
}

// buildSortRunSink compiles a sort over a fusible chain into a push
// pipeline: each worker runs the fused chain over its claimed morsel and
// buffers the surviving rows under a memctl reservation, cutting spill runs
// when the pool sheds memory; at morsel end the leftover stable-sorts into a
// final in-memory run. Emission k-way merges every run in (morsel, cut)
// order — each run is a contiguous input range and ties break toward the
// earliest, so the merged order is exactly one global stable sort.
func (ex *executor) buildSortRunSink(s *logical.Sort) (BatchIterator, bool, error) {
	cs, ok := compileChain(s.Input)
	if !ok {
		return nil, false, nil
	}
	// Validate stage and key compilation before committing to the scan.
	if _, err := newPipeStages(cs, ex.opts.NaiveMasks); err != nil {
		return nil, true, err
	}
	if _, err := sortKeyEvs(s); err != nil {
		return nil, true, err
	}
	parts, share, err := ex.scanSource(cs.scan, cs.prune)
	if err != nil {
		return nil, true, err
	}
	ex.configureChainSkip(cs)
	ex.metrics.addFusedPipelines(1)
	morsels := buildMorsels(parts, morselTarget(parts, ex.opts.BatchSize, ex.opts.Parallelism))
	if len(morsels) <= 1 {
		in, err := ex.serialChain(cs, parts, share)
		if err != nil {
			return nil, true, err
		}
		it, err := ex.newSortIter(s, in)
		return it, true, err
	}
	it, err := newSortRunIter(ex, s, cs, morsels, share)
	if err != nil {
		return nil, true, err
	}
	ex.closers = append(ex.closers, it.run.close)
	ex.onClose(it.sink.closeRuns)
	if share != nil {
		ex.closers = append(ex.closers, share.Close)
	}
	return it, true, nil
}

// writeSortedRun writes already-sorted rows out as one spill run.
func writeSortedRun(spillDir string, width int, rows []Row) (*storage.SpillFile, error) {
	w, err := storage.NewSpillWriter(spillDir, width)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := w.Append(row); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}

// runRef is one sorted run: a spill file or in-memory rows (with the rows'
// reservation, released per row as the merge emits them).
type runRef struct {
	file     *storage.SpillFile
	rows     []Row
	resident int64
}

// sortRunSink collects finished morsels' runs. It is itself Spillable:
// under pressure the pool can convert any collected in-memory run — already
// sorted — into a file run in place.
type sortRunSink struct {
	width    int
	spillDir string
	tracker  *memctl.Tracker

	mu       sync.Mutex
	resident int64
	byMorsel map[int][]runRef
	files    []*storage.SpillFile // every run file ever created, for close
	sealed   bool
}

// SpillableBytes is called with the pool lock held; it must not take sk.mu.
func (sk *sortRunSink) SpillableBytes() int64 { return atomic.LoadInt64(&sk.resident) }

func (sk *sortRunSink) Label() string { return opSort }

func (sk *sortRunSink) Spill() (int64, error) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.sealed {
		return 0, nil
	}
	var freed int64
	var firstErr error
	for _, srcs := range sk.byMorsel {
		for ci := range srcs {
			src := &srcs[ci]
			if src.rows == nil {
				continue
			}
			f, err := writeSortedRun(sk.spillDir, sk.width, src.rows)
			if err != nil {
				firstErr = err
				break
			}
			sk.files = append(sk.files, f)
			sk.tracker.AddSpill(opSort, f.Bytes(), 1)
			freed += src.resident
			atomic.AddInt64(&sk.resident, -src.resident)
			src.file, src.rows, src.resident = f, nil, 0
		}
		if firstErr != nil {
			break
		}
	}
	if freed > 0 {
		sk.tracker.Release(opSort, freed)
	}
	return freed, firstErr
}

func (sk *sortRunSink) seal() {
	sk.mu.Lock()
	sk.sealed = true
	sk.mu.Unlock()
}

func (sk *sortRunSink) addFile(f *storage.SpillFile) {
	sk.mu.Lock()
	sk.files = append(sk.files, f)
	sk.mu.Unlock()
}

func (sk *sortRunSink) closeRuns() {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	for _, f := range sk.files {
		f.Close()
	}
}

// sortWorkerState buffers one worker's in-flight morsel rows. Spillable:
// the pool can cut the buffered prefix into a sorted run mid-morsel (runs
// stay contiguous input ranges, in cut order).
type sortWorkerState struct {
	sink  *sortRunSink
	evs   []*evaluator
	keys  []logical.SortKey
	width int

	mu       sync.Mutex
	buf      []Row
	resident int64
	runs     []runRef
}

// SpillableBytes is called with the pool lock held; it must not take ws.mu.
func (ws *sortWorkerState) SpillableBytes() int64 { return atomic.LoadInt64(&ws.resident) }

func (ws *sortWorkerState) Label() string { return opSort }

func (ws *sortWorkerState) Spill() (int64, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if len(ws.buf) == 0 {
		return 0, nil
	}
	sortRowsStable(ws.buf, ws.evs, ws.keys)
	f, err := writeSortedRun(ws.sink.spillDir, ws.width, ws.buf)
	if err != nil {
		return 0, err
	}
	ws.sink.addFile(f)
	ws.runs = append(ws.runs, runRef{file: f})
	freed := ws.resident
	atomic.StoreInt64(&ws.resident, 0)
	ws.buf = nil
	ws.sink.tracker.Release(opSort, freed)
	ws.sink.tracker.AddSpill(opSort, f.Bytes(), 1)
	return freed, nil
}

// addBatch gathers one chain-output batch into the worker's buffer, in
// bounded chunks with no lock held during Reserve — the pool may pick this
// very worker (or the sink) as the spill victim mid-batch.
func (ws *sortWorkerState) addBatch(b *vec.Batch) error {
	n := b.Len()
	chunk := make([]Row, 0, n)
	var bytes int64
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if err := ws.sink.tracker.Reserve(opSort, bytes); err != nil {
			return err
		}
		ws.mu.Lock()
		ws.buf = append(ws.buf, chunk...)
		atomic.AddInt64(&ws.resident, bytes)
		ws.mu.Unlock()
		chunk, bytes = chunk[:0:0], 0
		return nil
	}
	for i := 0; i < n; i++ {
		row := make(Row, ws.width)
		b.Gather(i, row)
		chunk = append(chunk, row)
		bytes += rowMemBytes(row)
		if bytes >= reserveChunkBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// finishMorsel stable-sorts the in-memory leftover as the morsel's final
// run and hands every run to the sink (holding ws.mu throughout, so a
// concurrent Spill can never observe a half-moved morsel). The leftover's
// reservation transfers to the sink.
func (ws *sortWorkerState) finishMorsel(mi int) {
	ws.mu.Lock()
	srcs := ws.runs
	ws.runs = nil
	if len(ws.buf) > 0 {
		sortRowsStable(ws.buf, ws.evs, ws.keys)
		srcs = append(srcs, runRef{rows: ws.buf, resident: ws.resident})
	}
	moved := ws.resident
	ws.buf = nil
	atomic.StoreInt64(&ws.resident, 0)
	if len(srcs) > 0 {
		ws.sink.deposit(mi, srcs, moved)
	}
	ws.mu.Unlock()
}

// abandonMorsel clears the worker state after a mid-morsel error so the
// worker's next morsel cannot mix rows; the reservation is refunded. Run
// files already created are closed by the sink at query close.
func (ws *sortWorkerState) abandonMorsel() {
	ws.mu.Lock()
	freed := ws.resident
	ws.buf = nil
	ws.runs = nil
	atomic.StoreInt64(&ws.resident, 0)
	if freed > 0 {
		ws.sink.tracker.Release(opSort, freed)
	}
	ws.mu.Unlock()
}

func (sk *sortRunSink) deposit(mi int, srcs []runRef, resident int64) {
	sk.mu.Lock()
	sk.byMorsel[mi] = srcs
	atomic.AddInt64(&sk.resident, resident)
	sk.mu.Unlock()
}

// sortRunIter drives the sort-run sink: parallel run generation, then a
// k-way merge over every run in (morsel, cut) order.
type sortRunIter struct {
	run       *orderedRun[error]
	morsels   []morsel
	cols      []string
	batchSize int
	width     int
	keys      []logical.SortKey
	evs       []*evaluator
	m         *Metrics
	pool      *workerPool
	share     *scanshare.Scan
	ctrl      *skipController
	tracker   *memctl.Tracker
	wstages   [][]pipeStage
	wstates   []*sortWorkerState
	sink      *sortRunSink

	built bool
	merge *sortMerger
}

func newSortRunIter(ex *executor, s *logical.Sort, cs *chainSpec, morsels []morsel, share *scanshare.Scan) (*sortRunIter, error) {
	run := newOrderedRun[error](len(morsels), ex.opts.Parallelism)
	width := len(s.Input.Schema())
	sink := &sortRunSink{
		width: width, spillDir: ex.mempool.SpillDir(), tracker: ex.tracker,
		byMorsel: make(map[int][]runRef),
	}
	wstages := make([][]pipeStage, run.workers)
	wstates := make([]*sortWorkerState, run.workers)
	for w := 0; w < run.workers; w++ {
		st, err := newPipeStages(cs, ex.opts.NaiveMasks)
		if err != nil {
			return nil, err
		}
		wevs, err := sortKeyEvs(s)
		if err != nil {
			return nil, err
		}
		wstages[w] = st
		wstates[w] = &sortWorkerState{sink: sink, evs: wevs, keys: s.Keys, width: width}
	}
	evs, err := sortKeyEvs(s)
	if err != nil {
		return nil, err
	}
	ctrl, _ := ex.lookupScanCtrl(cs.scan)
	return &sortRunIter{
		run: run, morsels: morsels, cols: cs.scan.ColNames,
		batchSize: ex.opts.BatchSize, width: width, keys: s.Keys, evs: evs,
		m: ex.metrics, pool: ex.pool, share: share, ctrl: ctrl, tracker: ex.tracker,
		wstages: wstages, wstates: wstates, sink: sink,
	}, nil
}

func (it *sortRunIter) work(w, i int) error {
	ws := it.wstates[w]
	stages := it.wstages[w]
	// Decode and the fused stage loop run under one shared pool slot; the
	// slot is released before gathering, whose Reserve calls may block on
	// spills and must never hold a slot.
	it.pool.acquire()
	var out, src []*vec.Batch
	var err error
	co := batchCoalescer{target: it.batchSize}
	push := func(cb *vec.Batch) {
		it.m.addProcessed(int64(cb.Len()))
		it.m.addPipelineBatches(1)
		if ob := runStages(stages, cb, it.m); ob != nil {
			it.m.addProcessed(int64(ob.Len())) // the sort's input charge
			out = append(out, ob)
		}
	}
	for _, p := range it.morsels[i].parts {
		if it.ctrl.shouldPrune(p) {
			// The sink drains totally, so the as-if-scanned recharge can
			// happen worker-side like every other charge here.
			it.ctrl.recharge(int64(p.NumRows))
			continue
		}
		if src, err = partitionBatches(p, it.cols, it.batchSize, it.share, it.run.stop, it.m, src[:0]); err != nil {
			it.pool.release()
			return err
		}
		for _, b := range src {
			if cb := co.add(b); cb != nil {
				push(cb)
			}
		}
	}
	if cb := co.flush(); cb != nil {
		push(cb)
	}
	it.pool.release()
	for _, ob := range out {
		if err := ws.addBatch(ob); err != nil {
			ws.abandonMorsel()
			return err
		}
	}
	ws.finishMorsel(i)
	return nil
}

func (it *sortRunIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.build(); err != nil {
			return nil, err
		}
		it.built = true
	}
	return it.merge.NextBatch()
}

func (it *sortRunIter) build() error {
	for _, ws := range it.wstates {
		it.tracker.Register(ws)
	}
	it.tracker.Register(it.sink)
	it.run.start(it.work)
	var firstErr error
	for {
		err, ok := it.run.recv()
		if !ok {
			break
		}
		if err != nil {
			firstErr = err
			break
		}
	}
	it.run.close()
	// Unregister before emission: the merge's consumers may reserve memory,
	// and those reservations must never route a spill into sealed state.
	for _, ws := range it.wstates {
		it.tracker.Unregister(ws)
	}
	it.tracker.Unregister(it.sink)
	it.sink.seal()
	if firstErr != nil {
		return firstErr
	}
	var cursors []*sortRunCursor
	it.sink.mu.Lock()
	for mi := 0; mi < len(it.morsels); mi++ {
		for _, src := range it.sink.byMorsel[mi] {
			if src.file != nil {
				cursors = append(cursors, &sortRunCursor{file: src.file, rd: src.file.NewReader(), width: it.width})
			} else {
				cursors = append(cursors, &sortRunCursor{rows: src.rows, residual: src.resident, tracker: it.tracker})
			}
		}
	}
	it.sink.mu.Unlock()
	for _, c := range cursors {
		if err := c.advance(it.evs); err != nil {
			return err
		}
	}
	it.merge = &sortMerger{
		cursors: cursors, evs: it.evs, keys: it.keys,
		width: it.width, batchSize: it.batchSize,
	}
	return nil
}
