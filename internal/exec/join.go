package exec

import (
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// keyBuf encodes a tuple of values into a hashable string key with type
// tags; NULL encodes distinctly so callers can decide NULL semantics.
func encodeKey(b *strings.Builder, vals []types.Value) string {
	b.Reset()
	for _, v := range vals {
		if v.Null {
			b.WriteByte('n')
		} else {
			switch v.Kind {
			case types.KindString:
				b.WriteByte('s')
				b.WriteString(strconv.Itoa(len(v.S)))
				b.WriteByte(':')
				b.WriteString(v.S)
			case types.KindFloat64:
				b.WriteByte('f')
				b.WriteString(strconv.FormatFloat(v.F, 'b', -1, 64))
			default:
				b.WriteByte('i')
				b.WriteString(strconv.FormatInt(v.I, 10))
			}
		}
		b.WriteByte('|')
	}
	return b.String()
}

func hasNull(vals []types.Value) bool {
	for _, v := range vals {
		if v.Null {
			return true
		}
	}
	return false
}

func (ex *executor) buildJoin(j *logical.Join) (Iterator, error) {
	left, err := ex.build(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.build(j.Right)
	if err != nil {
		return nil, err
	}
	leftLayout := layoutOf(j.Left)
	rightLayout := layoutOf(j.Right)

	// Split the condition into equi-join key expressions and a residual.
	// Keys may be arbitrary expressions as long as each side of the
	// equality evaluates over a single input (this is what keeps the
	// CASE-dispatched keys produced by the UnionAllOnJoin rewrite
	// hash-joinable).
	var leftKeys, rightKeys []*evaluator
	var residual []expr.Expr
	leftSet := logical.OutputSet(j.Left)
	rightSet := logical.OutputSet(j.Right)
	for _, c := range expr.Conjuncts(j.Cond) {
		if b, ok := c.(*expr.Binary); ok && b.Op == expr.OpEq {
			le, re := b.L, b.R
			if !expr.RefersOnly(le, leftSet) || !expr.RefersOnly(re, rightSet) {
				le, re = re, le
			}
			if expr.RefersOnly(le, leftSet) && expr.RefersOnly(re, rightSet) &&
				types.Comparable(le.Type(), re.Type()) {
				lev, lerr := newEvaluator(le, leftLayout)
				rev, rerr := newEvaluator(re, rightLayout)
				if lerr == nil && rerr == nil {
					leftKeys = append(leftKeys, lev)
					rightKeys = append(rightKeys, rev)
					continue
				}
			}
		}
		residual = append(residual, c)
	}

	// The residual (and any non-equi condition) evaluates over the combined
	// left+right layout.
	combined := make(map[expr.ColumnID]int, len(leftSet)+len(rightSet))
	for id, idx := range leftLayout {
		combined[id] = idx
	}
	width := len(j.Left.Schema())
	for id, idx := range rightLayout {
		combined[id] = width + idx
	}
	var resEv *evaluator
	if len(residual) > 0 {
		resEv, err = newEvaluator(expr.And(residual...), combined)
		if err != nil {
			return nil, err
		}
	}

	if len(leftKeys) == 0 {
		return &nestedLoopIter{
			kind: j.Kind, left: left, right: right,
			leftWidth: width, rightWidth: len(j.Right.Schema()),
			cond: resEv, m: ex.metrics,
		}, nil
	}
	return &hashJoinIter{
		kind: j.Kind, left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		leftWidth: width, rightWidth: len(j.Right.Schema()),
		residual: resEv, m: ex.metrics,
	}, nil
}

// hashJoinIter builds a hash table over the right input and streams the
// left (probe) input — the engine's only buffered state, matching a
// streaming engine's memory profile.
type hashJoinIter struct {
	kind                  logical.JoinKind
	left, right           Iterator
	leftKeys, rightKeys   []*evaluator
	leftWidth, rightWidth int
	residual              *evaluator
	m                     *Metrics

	built   bool
	table   map[string][]Row
	keyBuf  strings.Builder
	keyVals []types.Value

	// probe state
	curLeft        Row
	curLeftMatched bool
	curMatches     []Row
	matchIdx       int
}

func (it *hashJoinIter) buildTable() error {
	it.table = make(map[string][]Row)
	it.keyVals = make([]types.Value, len(it.rightKeys))
	for {
		row, err := it.right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		it.m.addProcessed(1)
		for i, ev := range it.rightKeys {
			it.keyVals[i] = ev.eval(row)
		}
		if hasNull(it.keyVals) {
			continue // NULL keys never match in equi-joins
		}
		k := encodeKey(&it.keyBuf, it.keyVals)
		it.table[k] = append(it.table[k], row)
		it.m.addHashRows(1)
	}
	it.built = true
	return nil
}

func (it *hashJoinIter) Next() (Row, error) {
	if !it.built {
		if err := it.buildTable(); err != nil {
			return nil, err
		}
	}
	for {
		// Emit pending matches for the current probe row.
		for it.curLeft != nil && it.matchIdx < len(it.curMatches) {
			r := it.curMatches[it.matchIdx]
			it.matchIdx++
			out := make(Row, it.leftWidth+it.rightWidth)
			copy(out, it.curLeft)
			copy(out[it.leftWidth:], r)
			if it.residual != nil && !it.residual.eval(out).IsTrue() {
				continue
			}
			switch it.kind {
			case logical.SemiJoin:
				// First surviving match emits the probe row once.
				it.curMatches = nil
				return it.curLeft, nil
			case logical.LeftJoin, logical.InnerJoin:
				it.curLeftMatched = true
				return out, nil
			}
		}
		// Left join: emit NULL-extended row when nothing matched.
		if it.curLeft != nil && it.kind == logical.LeftJoin && !it.curLeftMatched {
			out := make(Row, it.leftWidth+it.rightWidth)
			copy(out, it.curLeft)
			for i := it.leftWidth; i < len(out); i++ {
				out[i] = types.Unknown()
			}
			it.curLeft = nil
			return out, nil
		}
		// Advance to the next probe row.
		row, err := it.left.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, nil
		}
		it.m.addProcessed(1)
		it.curLeft = row
		it.curLeftMatched = false
		it.matchIdx = 0
		kv := make([]types.Value, len(it.leftKeys))
		for i, ev := range it.leftKeys {
			kv[i] = ev.eval(row)
		}
		if hasNull(kv) {
			it.curMatches = nil
			if it.kind != logical.LeftJoin {
				it.curLeft = nil
			}
			continue
		}
		it.curMatches = it.table[encodeKey(&it.keyBuf, kv)]
		if len(it.curMatches) == 0 && it.kind != logical.LeftJoin {
			it.curLeft = nil
		}
	}
}

// nestedLoopIter handles cross joins and joins without equi-conjuncts. The
// right side is fully materialized.
type nestedLoopIter struct {
	kind                  logical.JoinKind
	left, right           Iterator
	leftWidth, rightWidth int
	cond                  *evaluator
	m                     *Metrics

	built     bool
	rightRows []Row
	curLeft   Row
	matched   bool
	rightIdx  int
}

func (it *nestedLoopIter) Next() (Row, error) {
	if !it.built {
		for {
			row, err := it.right.Next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			it.m.addProcessed(1)
			it.m.addHashRows(1)
			it.rightRows = append(it.rightRows, row)
		}
		it.built = true
	}
	for {
		if it.curLeft == nil {
			row, err := it.left.Next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				return nil, nil
			}
			it.m.addProcessed(1)
			it.curLeft = row
			it.matched = false
			it.rightIdx = 0
		}
		for it.rightIdx < len(it.rightRows) {
			r := it.rightRows[it.rightIdx]
			it.rightIdx++
			out := make(Row, it.leftWidth+it.rightWidth)
			copy(out, it.curLeft)
			copy(out[it.leftWidth:], r)
			if it.cond != nil && !it.cond.eval(out).IsTrue() {
				continue
			}
			switch it.kind {
			case logical.SemiJoin:
				left := it.curLeft
				it.curLeft = nil
				return left, nil
			default:
				it.matched = true
				return out, nil
			}
		}
		if it.kind == logical.LeftJoin && !it.matched {
			out := make(Row, it.leftWidth+it.rightWidth)
			copy(out, it.curLeft)
			for i := it.leftWidth; i < len(out); i++ {
				out[i] = types.Unknown()
			}
			it.curLeft = nil
			return out, nil
		}
		it.curLeft = nil
	}
}
