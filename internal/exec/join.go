package exec

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/types"
	"repro/internal/vec"
)

// keyBuf encodes a tuple of values into a hashable string key with type
// tags; NULL encodes distinctly so callers can decide NULL semantics.
func encodeKey(b *strings.Builder, vals []types.Value) string {
	b.Reset()
	for _, v := range vals {
		if v.Null {
			b.WriteByte('n')
		} else {
			switch v.Kind {
			case types.KindString:
				b.WriteByte('s')
				b.WriteString(strconv.Itoa(len(v.S)))
				b.WriteByte(':')
				b.WriteString(v.S)
			case types.KindFloat64:
				b.WriteByte('f')
				b.WriteString(strconv.FormatFloat(v.F, 'b', -1, 64))
			default:
				b.WriteByte('i')
				b.WriteString(strconv.FormatInt(v.I, 10))
			}
		}
		b.WriteByte('|')
	}
	return b.String()
}

func hasNull(vals []types.Value) bool {
	for _, v := range vals {
		if v.Null {
			return true
		}
	}
	return false
}

func (ex *executor) buildJoin(j *logical.Join) (BatchIterator, error) {
	// Snapshot the probe leaf's skip registration before building, so the
	// sideways attachment below can tell a live scan from a cache replay.
	var probePrev *scanCtrlReg
	if ps, _ := probeScan(j.Left); ps != nil {
		probePrev = ex.sideCtrls[ps]
	}
	left, err := ex.build(j.Left)
	if err != nil {
		return nil, err
	}
	// The build side is always consumed totally before probing begins.
	right, err := ex.buildConsumed(j.Right)
	if err != nil {
		return nil, err
	}
	leftLayout := layoutOf(j.Left)
	rightLayout := layoutOf(j.Right)

	// Split the condition into equi-join key expressions and a residual.
	// Keys may be arbitrary expressions as long as each side of the
	// equality evaluates over a single input (this is what keeps the
	// CASE-dispatched keys produced by the UnionAllOnJoin rewrite
	// hash-joinable).
	var leftKeys, rightKeys []*batchEvaluator
	var leftKeyExprs, rightKeyExprs []expr.Expr
	var residual []expr.Expr
	leftSet := logical.OutputSet(j.Left)
	rightSet := logical.OutputSet(j.Right)
	for _, c := range expr.Conjuncts(j.Cond) {
		if b, ok := c.(*expr.Binary); ok && b.Op == expr.OpEq {
			le, re := b.L, b.R
			if !expr.RefersOnly(le, leftSet) || !expr.RefersOnly(re, rightSet) {
				le, re = re, le
			}
			if expr.RefersOnly(le, leftSet) && expr.RefersOnly(re, rightSet) &&
				types.Comparable(le.Type(), re.Type()) {
				lev, lerr := newBatchEvaluator(le, leftLayout)
				rev, rerr := newBatchEvaluator(re, rightLayout)
				if lerr == nil && rerr == nil {
					leftKeys = append(leftKeys, lev)
					rightKeys = append(rightKeys, rev)
					leftKeyExprs = append(leftKeyExprs, le)
					rightKeyExprs = append(rightKeyExprs, re)
					continue
				}
			}
		}
		residual = append(residual, c)
	}

	// The residual (and any non-equi condition) evaluates row-at-a-time
	// over the combined left+right row, which only exists transiently
	// during probing.
	combined := make(map[expr.ColumnID]int, len(leftSet)+len(rightSet))
	for id, idx := range leftLayout {
		combined[id] = idx
	}
	width := len(j.Left.Schema())
	for id, idx := range rightLayout {
		combined[id] = width + idx
	}
	var resEv *evaluator
	if len(residual) > 0 {
		resEv, err = newEvaluator(expr.And(residual...), combined)
		if err != nil {
			return nil, err
		}
	}

	if len(leftKeys) == 0 {
		return &nestedLoopIter{
			kind: j.Kind, left: left, right: right,
			leftWidth: width, rightWidth: len(j.Right.Schema()),
			cond: resEv, batchSize: ex.opts.BatchSize, m: ex.metrics,
			tracker: ex.tracker,
		}, nil
	}
	hj := &hashJoinIter{
		kind: j.Kind, left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		leftWidth: width, rightWidth: len(j.Right.Schema()),
		residual: resEv, batchSize: ex.opts.BatchSize, m: ex.metrics,
		workers: ex.opts.Parallelism, pool: ex.pool, tracker: ex.tracker,
	}
	// Sideways data skipping: when the probe side is a plain (projected)
	// scan, publish build-key summaries so probe partitions provably
	// disjoint from the build keys skip decode. The table build completes
	// before the first probe pull, so the filters are always published (or
	// the build failed) by the time a probe worker consults them.
	hj.sideways = ex.attachSideways(j, leftKeyExprs, rightKeyExprs, probePrev)
	return hj, nil
}

// hashJoinIter builds a hash table over the right input and streams the
// left (probe) input batch-at-a-time — the engine's only buffered state,
// matching a streaming engine's memory profile. With Parallelism > 1 the
// build is partition-wise parallel: a reader evaluates key expressions and
// hashes them batch-at-a-time, and one worker per partition inserts exactly
// the rows whose key hash maps to its shard, in global input order, so each
// bucket's row order is identical to the serial build. Probe keys are
// evaluated vector-wise per batch; matches accumulate into an output
// builder until a full batch is ready.
type hashJoinIter struct {
	kind                  logical.JoinKind
	left, right           BatchIterator
	leftKeys, rightKeys   []*batchEvaluator
	leftWidth, rightWidth int
	residual              *evaluator
	batchSize             int
	m                     *Metrics
	workers               int
	pool                  *workerPool
	// tracker accounts the build table's bytes. The table cannot spill —
	// under a tight budget the reservation fails with ErrMemoryExceeded —
	// but releasing it at probe EOF frees the budget for downstream
	// blocking operators (e.g. an aggregation's spill replay).
	tracker    *memctl.Tracker
	reserved   int64 // atomic during parallel build, settled by wg.Wait
	released   bool
	buildErrMu sync.Mutex
	buildErr   error
	// sideways are the probe-side skip filters this build feeds (nil when
	// sideways skipping did not attach). Key summaries accumulate over
	// inserted rows and publish when the table build completes.
	sideways []*sidewaysFilter

	built   bool
	tables  []map[string][]Row // hash-partitioned shards; len 1 when serial
	keyBuf  strings.Builder
	keyVals []types.Value

	// probe state
	leftBatch      *vec.Batch
	leftKeyCols    [][]types.Value
	leftRowIdx     int
	curLeft        Row
	curLeftActive  bool
	curLeftMatched bool
	curMatches     []Row
	matchIdx       int
	combined       Row
}

func (it *hashJoinIter) outWidth() int {
	if it.kind == logical.SemiJoin {
		return it.leftWidth
	}
	return it.leftWidth + it.rightWidth
}

func (it *hashJoinIter) buildTable() error {
	it.keyVals = make([]types.Value, len(it.rightKeys))
	if it.workers > 1 {
		if err := it.buildTableParallel(); err != nil {
			return err
		}
		it.built = true
		return nil
	}
	table := make(map[string][]Row)
	it.tables = []map[string][]Row{table}
	accs := it.newKeyAccums()
	for {
		b, err := it.right.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		it.m.addProcessed(int64(n))
		keyCols := make([][]types.Value, len(it.rightKeys))
		for k, ev := range it.rightKeys {
			keyCols[k] = ev.eval(b)
		}
		inserted := 0
		var batchBytes int64
		for i := 0; i < n; i++ {
			for k := range keyCols {
				it.keyVals[k] = keyCols[k][i]
			}
			if hasNull(it.keyVals) {
				continue // NULL keys never match in equi-joins
			}
			row := make(Row, it.rightWidth)
			b.Gather(i, row)
			k := encodeKey(&it.keyBuf, it.keyVals)
			table[k] = append(table[k], row)
			inserted++
			batchBytes += rowMemBytes(row) + hashRowOverhead
			for si, sf := range it.sideways {
				accs[si].observe(it.keyVals[sf.keyPos])
			}
		}
		it.m.addHashRows(int64(inserted))
		if batchBytes > 0 {
			if err := it.tracker.Reserve(opJoin, batchBytes); err != nil {
				return err
			}
			it.reserved += batchBytes
		}
	}
	it.publishSideways(accs)
	it.built = true
	return nil
}

// newKeyAccums creates one build-key accumulator per attached sideways
// filter; nil when sideways skipping is off for this join.
func (it *hashJoinIter) newKeyAccums() []*keyAccum {
	if len(it.sideways) == 0 {
		return nil
	}
	accs := make([]*keyAccum, len(it.sideways))
	for si, sf := range it.sideways {
		accs[si] = newKeyAccum(sf.kind)
	}
	return accs
}

// publishSideways installs the completed build's key summaries, enabling
// probe-side pruning. Probe iterators start on the probe's first pull,
// which happens strictly after the build completes.
func (it *hashJoinIter) publishSideways(accs []*keyAccum) {
	for si, sf := range it.sideways {
		accs[si].publish(sf)
	}
}

// buildTask carries one build-side batch to the partition workers: the key
// expression vectors (copied out of the reader's reusable evaluator
// buffers) and one hash per active row.
type buildTask struct {
	b       *vec.Batch
	keyCols [][]types.Value
	hashes  []uint64
}

// buildTableParallel partitions the build rows by key hash across the
// worker pool. Each shard worker owns one map, visits batches in input
// order, and inserts only its rows, so every bucket's slice is identical to
// what the serial build produces; the probe side routes each lookup to the
// shard its key hashes to.
func (it *hashJoinIter) buildTableParallel() error {
	shards := it.workers
	it.tables = make([]map[string][]Row, shards)
	chans := make([]chan buildTask, shards)
	shardAccs := make([][]*keyAccum, shards)
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		chans[p] = make(chan buildTask, 2)
		it.tables[p] = make(map[string][]Row)
		shardAccs[p] = it.newKeyAccums()
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			table := it.tables[p]
			accs := shardAccs[p]
			var keyBuf strings.Builder
			kv := make([]types.Value, len(it.rightKeys))
			for task := range chans[p] {
				it.pool.acquire()
				n := task.b.Len()
				inserted := 0
				var batchBytes int64
				for i := 0; i < n; i++ {
					if int(task.hashes[i]%uint64(shards)) != p {
						continue
					}
					for k := range task.keyCols {
						kv[k] = task.keyCols[k][i]
					}
					if hasNull(kv) {
						continue // NULL keys never match in equi-joins
					}
					row := make(Row, it.rightWidth)
					task.b.Gather(i, row)
					key := encodeKey(&keyBuf, kv)
					table[key] = append(table[key], row)
					inserted++
					batchBytes += rowMemBytes(row) + hashRowOverhead
					for si, sf := range it.sideways {
						accs[si].observe(kv[sf.keyPos])
					}
				}
				it.m.addHashRows(int64(inserted))
				it.pool.release()
				// Reserve without holding a pool slot: Reserve may block
				// while the pool spills a victim that needs slots to run.
				if batchBytes > 0 {
					if err := it.tracker.Reserve(opJoin, batchBytes); err != nil {
						it.setBuildErr(err)
					} else {
						atomic.AddInt64(&it.reserved, batchBytes)
					}
				}
			}
		}(p)
	}
	var readErr error
	for {
		b, err := it.right.NextBatch()
		if err != nil {
			readErr = err
			break
		}
		if b == nil {
			break
		}
		n := b.Len()
		it.m.addProcessed(int64(n))
		if n == 0 {
			continue
		}
		keyCols := make([][]types.Value, len(it.rightKeys))
		for k, ev := range it.rightKeys {
			vals := ev.eval(b)
			cp := make([]types.Value, n)
			copy(cp, vals)
			keyCols[k] = cp
		}
		hashes := make([]uint64, n)
		vec.HashRows(keyCols, hashes)
		task := buildTask{b: b, keyCols: keyCols, hashes: hashes}
		for p := range chans {
			chans[p] <- task
		}
	}
	for p := range chans {
		close(chans[p])
	}
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	if err := it.getBuildErr(); err != nil {
		return err
	}
	if len(it.sideways) > 0 {
		accs := it.newKeyAccums()
		for p := range shardAccs {
			for si := range accs {
				accs[si].merge(shardAccs[p][si])
			}
		}
		it.publishSideways(accs)
	}
	return nil
}

func (it *hashJoinIter) setBuildErr(err error) {
	it.buildErrMu.Lock()
	if it.buildErr == nil {
		it.buildErr = err
	}
	it.buildErrMu.Unlock()
}

func (it *hashJoinIter) getBuildErr() error {
	it.buildErrMu.Lock()
	defer it.buildErrMu.Unlock()
	return it.buildErr
}

// releaseBuild returns the build table's reservation once probing is done.
// The table itself stays referenced until the iterator is dropped, but its
// budget moves downstream (a spilled aggregation's replay, a sort merge).
func (it *hashJoinIter) releaseBuild() {
	if it.released {
		return
	}
	it.released = true
	if r := atomic.LoadInt64(&it.reserved); r > 0 {
		it.tracker.Release(opJoin, r)
	}
}

// lookup returns the bucket for a non-NULL probe key. Partitioned tables
// route by the same hash the build used; equal encoded keys always hash
// equal, so a matching build row is found exactly when the serial single
// table would find it.
func (it *hashJoinIter) lookup(kv []types.Value) []Row {
	if len(it.tables) == 1 {
		return it.tables[0][encodeKey(&it.keyBuf, kv)]
	}
	shard := vec.HashKey(kv) % uint64(len(it.tables))
	return it.tables[shard][encodeKey(&it.keyBuf, kv)]
}

func (it *hashJoinIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.buildTable(); err != nil {
			return nil, err
		}
		it.curLeft = make(Row, it.leftWidth)
		it.combined = make(Row, it.leftWidth+it.rightWidth)
	}
	bl := vec.NewBuilder(it.outWidth(), it.batchSize)
	for {
		// Emit pending matches for the current probe row.
		for it.curLeftActive && it.matchIdx < len(it.curMatches) {
			r := it.curMatches[it.matchIdx]
			it.matchIdx++
			copy(it.combined, it.curLeft)
			copy(it.combined[it.leftWidth:], r)
			if it.residual != nil && !it.residual.eval(it.combined).IsTrue() {
				continue
			}
			switch it.kind {
			case logical.SemiJoin:
				// First surviving match emits the probe row once.
				bl.Append(it.curLeft)
				it.curLeftActive = false
			case logical.LeftJoin, logical.InnerJoin:
				it.curLeftMatched = true
				bl.Append(it.combined)
			}
			if bl.Full() {
				return bl.Flush(), nil
			}
		}
		if it.curLeftActive {
			// Left join: emit NULL-extended row when nothing matched.
			if it.kind == logical.LeftJoin && !it.curLeftMatched {
				copy(it.combined, it.curLeft)
				for i := it.leftWidth; i < len(it.combined); i++ {
					it.combined[i] = types.Unknown()
				}
				bl.Append(it.combined)
				it.curLeftActive = false
				if bl.Full() {
					return bl.Flush(), nil
				}
			}
			it.curLeftActive = false
		}
		// Advance to the next probe row, pulling a new batch as needed.
		if it.leftBatch == nil || it.leftRowIdx >= it.leftBatch.Len() {
			b, err := it.left.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				it.releaseBuild()
				return bl.Flush(), nil // nil when empty: EOF
			}
			it.m.addProcessed(int64(b.Len()))
			it.leftBatch, it.leftRowIdx = b, 0
			if cap(it.leftKeyCols) < len(it.leftKeys) {
				it.leftKeyCols = make([][]types.Value, len(it.leftKeys))
			}
			it.leftKeyCols = it.leftKeyCols[:len(it.leftKeys)]
			for k, ev := range it.leftKeys {
				it.leftKeyCols[k] = ev.eval(b)
			}
			continue
		}
		i := it.leftRowIdx
		it.leftRowIdx++
		it.leftBatch.Gather(i, it.curLeft)
		kv := it.keyVals[:0]
		for k := range it.leftKeyCols {
			kv = append(kv, it.leftKeyCols[k][i])
		}
		it.curLeftMatched = false
		it.matchIdx = 0
		if hasNull(kv) {
			// NULL probe keys: no matches; LEFT JOIN still NULL-extends.
			it.curMatches = nil
			it.curLeftActive = it.kind == logical.LeftJoin
			continue
		}
		it.curMatches = it.lookup(kv)
		it.curLeftActive = len(it.curMatches) > 0 || it.kind == logical.LeftJoin
	}
}

// nestedLoopIter handles cross joins and joins without equi-conjuncts. The
// right side is fully materialized.
type nestedLoopIter struct {
	kind                  logical.JoinKind
	left, right           BatchIterator
	leftWidth, rightWidth int
	cond                  *evaluator
	batchSize             int
	m                     *Metrics
	tracker               *memctl.Tracker
	reserved              int64
	released              bool

	built     bool
	rightRows []Row

	leftBatch     *vec.Batch
	leftRowIdx    int
	curLeft       Row
	curLeftActive bool
	matched       bool
	rightIdx      int
	combined      Row
}

func (it *nestedLoopIter) outWidth() int {
	if it.kind == logical.SemiJoin {
		return it.leftWidth
	}
	return it.leftWidth + it.rightWidth
}

func (it *nestedLoopIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		rows, reserved, err := drainRowsTracked(it.right, it.rightWidth, it.m, it.tracker, opNLJoin)
		if err != nil {
			return nil, err
		}
		it.rightRows = rows
		it.reserved = reserved
		it.m.addHashRows(int64(len(rows)))
		it.curLeft = make(Row, it.leftWidth)
		it.combined = make(Row, it.leftWidth+it.rightWidth)
		it.built = true
	}
	bl := vec.NewBuilder(it.outWidth(), it.batchSize)
	for {
		if it.curLeftActive {
			for it.rightIdx < len(it.rightRows) {
				r := it.rightRows[it.rightIdx]
				it.rightIdx++
				copy(it.combined, it.curLeft)
				copy(it.combined[it.leftWidth:], r)
				if it.cond != nil && !it.cond.eval(it.combined).IsTrue() {
					continue
				}
				if it.kind == logical.SemiJoin {
					bl.Append(it.curLeft)
					it.curLeftActive = false
				} else {
					it.matched = true
					bl.Append(it.combined)
				}
				if bl.Full() {
					return bl.Flush(), nil
				}
				if !it.curLeftActive {
					break
				}
			}
			if it.curLeftActive {
				if it.kind == logical.LeftJoin && !it.matched {
					copy(it.combined, it.curLeft)
					for i := it.leftWidth; i < len(it.combined); i++ {
						it.combined[i] = types.Unknown()
					}
					bl.Append(it.combined)
					if bl.Full() {
						it.curLeftActive = false
						return bl.Flush(), nil
					}
				}
				it.curLeftActive = false
			}
		}
		if it.leftBatch == nil || it.leftRowIdx >= it.leftBatch.Len() {
			b, err := it.left.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if !it.released {
					it.released = true
					if it.reserved > 0 {
						it.tracker.Release(opNLJoin, it.reserved)
					}
				}
				return bl.Flush(), nil
			}
			it.m.addProcessed(int64(b.Len()))
			it.leftBatch, it.leftRowIdx = b, 0
			continue
		}
		it.leftBatch.Gather(it.leftRowIdx, it.curLeft)
		it.leftRowIdx++
		it.curLeftActive = true
		it.matched = false
		it.rightIdx = 0
	}
}
