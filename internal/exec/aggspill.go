package exec

import (
	"errors"
	"sync/atomic"

	"repro/internal/memctl"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// Spill support for hash aggregation. The accumulator hash-partitions its
// groups into numSpillParts partitions by key hash. Under memory pressure a
// partition is dumped: its groups' aggState bits are written to a state
// file ONCE, the groups leave the hash table, and every later input row
// that hashes to the partition is appended raw (global index, keys, mask
// bits, argument values) to a rows file. At finish the partition is
// replayed: the state dump restores the exact accumulator bits and the raw
// rows continue accumulation one row at a time in input order — the same
// arithmetic, in the same order, as if the partition had never left
// memory. That is what keeps float sums bit-for-bit identical to the
// in-memory path: partial aggregates are never merged, accumulation is
// resumed.
//
// Emission order is first-seen order, pinned by group.firstIdx (the global
// input index of the group's first row, unique per group). Each emit run —
// the resident groups, then each replayed partition — is written in
// ascending firstIdx order, and the final merge picks the minimum firstIdx
// across runs, reproducing the no-spill emission order exactly.

// numSpillParts is the partition fan-out of one accumulator. A spill frees
// roughly 1/numSpillParts of the accumulator per dump, and replay needs one
// partition's groups resident at a time.
const numSpillParts = 8

// maxReplayDepth bounds recursive replay re-partitioning: a partition whose
// groups alone exceed the memory budget is split by deeper hash bits and
// each sub-partition replayed independently, up to this many levels
// (numSpillParts^(maxReplayDepth+1) leaf partitions). Past the bound the
// replay fails with the clean ErrMemoryExceeded it would otherwise have
// raised — skew beyond 8^4 partitions under a budget too small for one of
// them is a genuine limit, not a recoverable imbalance.
const maxReplayDepth = 3

// aggSpillPart is one hash partition of an accumulator's group table.
type aggSpillPart struct {
	// spilled is set when the partition has been dumped; from then on its
	// rows go to rowsW and no groups for it live in the hash table.
	spilled   bool
	stateDump *storage.SpillFile   // aggState dump taken at spill time
	rowsW     *storage.SpillWriter // raw rows arriving after the dump
	rowsF     *storage.SpillFile   // rowsW sealed at finish
	// touch is the accumulator clock of the partition's last activity;
	// the victim pick prefers the coldest partition.
	touch int64
	// groups lists the partition's resident groups (maintained only once
	// spilling has activated).
	groups []*group
}

// SpillableBytes reports the reserved bytes a dump could free. Called with
// the pool lock held: a plain atomic load, no accumulator lock.
func (ga *groupAccumulator) SpillableBytes() int64 { return atomic.LoadInt64(&ga.resident) }

func (ga *groupAccumulator) Label() string { return opGroupBy }

// Spill dumps the coldest resident partition to disk. Called by the memctl
// pool without its lock held; takes the accumulator lock, so it serializes
// against consumeBatch.
func (ga *groupAccumulator) Spill() (int64, error) {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	// Scalar aggregation (one group) never spills, and a sealed accumulator
	// is emitting — its remaining state must stay resident.
	if len(ga.keyIdx) == 0 || ga.sealed {
		return 0, nil
	}
	if !ga.spillActive {
		ga.activateSpill()
	}
	// Keep dumping partitions until bytes are actually freed: a partition
	// can hold only pending (not-yet-reserved) groups, and a zero return
	// would wrongly mark this whole accumulator dead for the reservation.
	var freed int64
	for freed == 0 {
		p := ga.pickVictimPart()
		if p < 0 {
			return freed, nil
		}
		f, err := ga.dumpPartition(p)
		if err != nil {
			return freed, err
		}
		freed += f
	}
	return freed, nil
}

// activateSpill assigns every existing group to its hash partition. Until
// the first spill this bookkeeping is skipped entirely, so the no-pressure
// path pays nothing beyond the reservation calls.
func (ga *groupAccumulator) activateSpill() {
	ga.spillActive = true
	for _, g := range ga.order {
		g.part = int(vec.HashKey(g.keyVals) % numSpillParts)
		ga.parts[g.part].groups = append(ga.parts[g.part].groups, g)
	}
}

// pickVictimPart chooses the coldest (oldest touch) resident partition,
// breaking ties toward the one holding more bytes.
func (ga *groupAccumulator) pickVictimPart() int {
	best := -1
	var bestTouch, bestBytes int64
	for p := range ga.parts {
		pt := &ga.parts[p]
		if pt.spilled || len(pt.groups) == 0 {
			continue
		}
		var pb int64
		for _, g := range pt.groups {
			pb += groupMemBytes(g.keyVals, len(ga.aggs.aggs))
		}
		if best < 0 || pt.touch < bestTouch || (pt.touch == bestTouch && pb > bestBytes) {
			best, bestTouch, bestBytes = p, pt.touch, pb
		}
	}
	return best
}

// dumpPartition writes partition p's aggState bits to a state file, opens
// its rows file, and drops its groups from the table. Caller holds ga.mu.
func (ga *groupAccumulator) dumpPartition(p int) (int64, error) {
	pt := &ga.parts[p]
	nAggs := len(ga.aggs.aggs)
	kw := len(ga.keyIdx)
	w, err := storage.NewSpillWriter(ga.spillDir, 1+kw+6*nAggs)
	if err != nil {
		return 0, err
	}
	rec := make([]types.Value, 1+kw+6*nAggs)
	var freed int64
	for _, g := range pt.groups {
		rec[0] = types.Int(g.firstIdx)
		copy(rec[1:], g.keyVals)
		off := 1 + kw
		for ai := range g.states {
			st := &g.states[ai]
			rec[off] = types.Int(st.count)
			rec[off+1] = types.Int(st.sumI)
			rec[off+2] = types.Float(st.sumF)
			rec[off+3] = types.Bool(st.seen)
			rec[off+4] = st.min
			rec[off+5] = st.max
			off += 6
		}
		if err := w.Append(rec); err != nil {
			w.Abort()
			return 0, err
		}
		if g.reserved {
			freed += groupMemBytes(g.keyVals, nAggs)
		}
	}
	dump, err := w.Finish()
	if err != nil {
		return 0, err
	}
	rw, err := storage.NewSpillWriter(ga.spillDir, ga.rowRecWidth())
	if err != nil {
		dump.Close()
		return 0, err
	}
	pt.stateDump = dump
	pt.rowsW = rw
	pt.spilled = true
	for _, g := range pt.groups {
		delete(ga.groups, encodeKey(&ga.keyBuf, g.keyVals))
	}
	keep := make([]*group, 0, len(ga.order)-len(pt.groups))
	for _, g := range ga.order {
		if g.part != p {
			keep = append(keep, g)
		}
	}
	ga.order = keep
	pt.groups = nil
	atomic.AddInt64(&ga.resident, -freed)
	ga.tracker.Release(opGroupBy, freed)
	ga.tracker.AddSpill(opGroupBy, dump.Bytes(), 1)
	return freed, nil
}

// rowRecWidth is the spilled-row record: global input index, group keys,
// one boolean per shared FILTER mask, one argument value per aggregate.
func (ga *groupAccumulator) rowRecWidth() int {
	return 1 + len(ga.keyIdx) + ga.nMasks + len(ga.argEvs)
}

// groupStream yields finished result rows (keys then aggregate results) in
// ascending firstIdx order.
type groupStream interface {
	next(dst Row) (firstIdx int64, ok bool, err error)
}

// seal marks the accumulator as emitting: from here on Spill() is a no-op,
// its remaining state stays resident until flushed or streamed.
func (ga *groupAccumulator) seal() {
	ga.mu.Lock()
	ga.sealed = true
	ga.mu.Unlock()
}

// spilledAny reports whether any partition has been dumped. Only stable
// once the accumulator is sealed.
func (ga *groupAccumulator) spilledAny() bool {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	return ga.anySpilledLocked()
}

func (ga *groupAccumulator) anySpilledLocked() bool {
	for p := range ga.parts {
		if ga.parts[p].spilled {
			return true
		}
	}
	return false
}

// flushResident writes the resident groups to an emit run and releases
// their budget. Used by the parallel iterator to drop every shard's
// reservation before any shard replays: replay reserves against the pool,
// and sibling shards' frozen resident bytes must not squeeze it out.
func (ga *groupAccumulator) flushResident() error {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	if len(ga.order) == 0 {
		return nil
	}
	f, err := ga.writeEmitRun(ga.order)
	if err != nil {
		return err
	}
	ga.runs = append(ga.runs, f)
	ga.order = nil
	ga.groups = make(map[string]*group)
	return nil
}

// finish seals the accumulator and returns its result stream. The caller
// must have unregistered the accumulator from the pool first. When nothing
// spilled this is a pure in-memory stream identical to the pre-spill
// emission; otherwise resident groups are flushed to an emit run (freeing
// their budget for replay), each spilled partition is replayed one at a
// time, and the runs merge by firstIdx.
func (ga *groupAccumulator) finish() (groupStream, error) {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	ga.sealed = true
	if !ga.anySpilledLocked() && len(ga.runs) == 0 {
		return &memGroupStream{ga: ga, groups: ga.order, keyWidth: len(ga.keyIdx), aggs: ga.aggs.aggs}, nil
	}

	emitW := 1 + len(ga.keyIdx) + len(ga.aggs.aggs)
	if len(ga.order) > 0 {
		f, err := ga.writeEmitRun(ga.order)
		if err != nil {
			return nil, err
		}
		ga.runs = append(ga.runs, f)
		ga.order = nil
		ga.groups = make(map[string]*group)
	}
	for p := range ga.parts {
		pt := &ga.parts[p]
		if !pt.spilled {
			continue
		}
		rowsF, err := pt.rowsW.Finish()
		if err != nil {
			return nil, err
		}
		pt.rowsW = nil
		pt.rowsF = rowsF
		ga.tracker.AddSpill(opGroupBy, rowsF.Bytes(), 1)
		if err := ga.replayFiles(pt.stateDump, pt.rowsF, 0); err != nil {
			return nil, err
		}
		pt.stateDump.Close()
		pt.stateDump = nil
		pt.rowsF.Close()
		pt.rowsF = nil
	}
	return newRunMergeStream(ga.runs, emitW)
}

// writeEmitRun renders groups (already in ascending firstIdx order) into
// an emit-run file of (firstIdx, keys, results) records and releases their
// reservations. Caller holds ga.mu.
func (ga *groupAccumulator) writeEmitRun(groups []*group) (*storage.SpillFile, error) {
	kw := len(ga.keyIdx)
	nAggs := len(ga.aggs.aggs)
	w, err := storage.NewSpillWriter(ga.spillDir, 1+kw+nAggs)
	if err != nil {
		return nil, err
	}
	rec := make([]types.Value, 1+kw+nAggs)
	var freed int64
	for _, g := range groups {
		rec[0] = types.Int(g.firstIdx)
		copy(rec[1:], g.keyVals)
		for ai := range ga.aggs.aggs {
			rec[1+kw+ai] = g.states[ai].result(ga.aggs.aggs[ai].agg)
		}
		if err := w.Append(rec); err != nil {
			w.Abort()
			return nil, err
		}
		if g.reserved {
			freed += groupMemBytes(g.keyVals, nAggs)
			g.reserved = false
		}
	}
	f, err := w.Finish()
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&ga.resident, -freed)
	ga.tracker.Release(opGroupBy, freed)
	ga.tracker.AddSpill(opGroupBy, f.Bytes(), 1)
	return f, nil
}

// replayFiles replays one partition's (state dump, raw rows) file pair into
// an emit run. When the partition's groups alone exceed the memory budget —
// skew that no dump during the consume phase could relieve — the pair is
// split by the next three hash bits into numSpillParts sub-pairs and each
// replayed recursively, so only one sub-partition's groups need residency
// at a time; maxReplayDepth bounds the recursion, past which the memory
// error surfaces cleanly. Caller holds ga.mu and owns closing state/rows.
func (ga *groupAccumulator) replayFiles(state, rows *storage.SpillFile, depth int) error {
	porder, err := ga.replayPair(state, rows)
	if err == nil {
		if len(porder) > 0 {
			f, err := ga.writeEmitRun(porder)
			if err != nil {
				return err
			}
			ga.runs = append(ga.runs, f)
		}
		for _, g := range porder {
			delete(ga.groups, encodeKey(&ga.keyBuf, g.keyVals))
		}
		return nil
	}
	if depth >= maxReplayDepth || !errors.Is(err, memctl.ErrMemoryExceeded) {
		return err
	}
	subStates, subRows, err := ga.splitPair(state, rows, depth)
	if err != nil {
		return err
	}
	closeFrom := func(i int) {
		for ; i < numSpillParts; i++ {
			subStates[i].Close()
			subRows[i].Close()
		}
	}
	for i := 0; i < numSpillParts; i++ {
		err := ga.replayFiles(subStates[i], subRows[i], depth+1)
		subStates[i].Close()
		subRows[i].Close()
		if err != nil {
			closeFrom(i + 1)
			return err
		}
	}
	return nil
}

// splitPair re-partitions a replay pair by hash bits one level deeper than
// the ones that selected it: record i of either file goes to sub-pair
// (HashKey(keys) >> 3*(depth+1)) % numSpillParts. Sequential reads and
// appends preserve relative record order, so every sub-pair inherits the
// parent's ordering invariants (state records ascending by firstIdx, row
// records in input order, post-dump indices above pre-dump ones).
func (ga *groupAccumulator) splitPair(state, rows *storage.SpillFile, depth int) (subStates, subRows []*storage.SpillFile, err error) {
	kw := len(ga.keyIdx)
	shift := uint(3 * (depth + 1))
	split := func(f *storage.SpillFile, width int) ([]*storage.SpillFile, error) {
		ws := make([]*storage.SpillWriter, numSpillParts)
		abort := func() {
			for _, w := range ws {
				if w != nil {
					w.Abort()
				}
			}
		}
		for i := range ws {
			w, err := storage.NewSpillWriter(ga.spillDir, width)
			if err != nil {
				abort()
				return nil, err
			}
			ws[i] = w
		}
		rd := f.NewReader()
		rec := make([]types.Value, width)
		for {
			ok, err := rd.Next(rec)
			if err != nil {
				abort()
				return nil, err
			}
			if !ok {
				break
			}
			sub := int((vec.HashKey(rec[1:1+kw]) >> shift) % numSpillParts)
			if err := ws[sub].Append(rec); err != nil {
				abort()
				return nil, err
			}
		}
		files := make([]*storage.SpillFile, numSpillParts)
		for i, w := range ws {
			sf, err := w.Finish()
			ws[i] = nil
			if err != nil {
				abort()
				for j := 0; j < i; j++ {
					files[j].Close()
				}
				return nil, err
			}
			files[i] = sf
			ga.tracker.AddSpill(opGroupBy, sf.Bytes(), 1)
		}
		return files, nil
	}
	subStates, err = split(state, 1+kw+6*len(ga.aggs.aggs))
	if err != nil {
		return nil, nil, err
	}
	subRows, err = split(rows, ga.rowRecWidth())
	if err != nil {
		for _, f := range subStates {
			f.Close()
		}
		return nil, nil, err
	}
	return subStates, subRows, nil
}

// replayPair restores a state dump and resumes accumulation over its raw
// rows, in input order — bit-for-bit the arithmetic of the never-spilled
// path. Returns the pair's groups in ascending firstIdx order: restored
// groups (dumped in discovery order, which is ascending) followed by groups
// first seen after the dump (file order, also ascending, and every
// post-dump index exceeds every pre-dump one). On error — including memory
// exhaustion, which the caller may recover from by re-partitioning — every
// side effect of the attempt is rolled back: reservations released, groups
// removed from the table, the created-groups count restored. Caller holds
// ga.mu; replay reservations are safe because the accumulator is already
// unregistered, so the pool can never route a spill back into this lock.
func (ga *groupAccumulator) replayPair(state, rows *storage.SpillFile) ([]*group, error) {
	kw := len(ga.keyIdx)
	nAggs := len(ga.aggs.aggs)
	var porder []*group
	var pendBytes, reservedHere, createdHere int64
	reserve := func(force bool) error {
		if pendBytes == 0 || (!force && pendBytes < 64<<10) {
			return nil
		}
		if err := ga.tracker.Reserve(opGroupBy, pendBytes); err != nil {
			return err
		}
		atomic.AddInt64(&ga.resident, pendBytes)
		reservedHere += pendBytes
		pendBytes = 0
		return nil
	}
	fail := func(err error) ([]*group, error) {
		for _, g := range porder {
			delete(ga.groups, encodeKey(&ga.keyBuf, g.keyVals))
		}
		ga.groupsCreated -= createdHere
		if reservedHere > 0 {
			atomic.AddInt64(&ga.resident, -reservedHere)
			ga.tracker.Release(opGroupBy, reservedHere)
		}
		return nil, err
	}

	srd := state.NewReader()
	srec := make([]types.Value, 1+kw+6*nAggs)
	for {
		ok, err := srd.Next(srec)
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		g := &group{
			keyVals:  append([]types.Value{}, srec[1:1+kw]...),
			states:   make([]aggState, nAggs),
			firstIdx: srec[0].I,
			part:     -1,
			reserved: true,
		}
		off := 1 + kw
		for ai := range g.states {
			st := &g.states[ai]
			st.count = srec[off].I
			st.sumI = srec[off+1].I
			st.sumF = srec[off+2].F
			st.seen = srec[off+3].IsTrue()
			st.min = srec[off+4]
			st.max = srec[off+5]
			off += 6
		}
		ga.groups[encodeKey(&ga.keyBuf, g.keyVals)] = g
		porder = append(porder, g)
		pendBytes += groupMemBytes(g.keyVals, nAggs)
		if err := reserve(false); err != nil {
			return fail(err)
		}
	}

	rrd := rows.NewReader()
	rrec := make([]types.Value, ga.rowRecWidth())
	maskOff := 1 + kw
	argOff := maskOff + ga.nMasks
	for {
		ok, err := rrd.Next(rrec)
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		kv := rrec[1 : 1+kw]
		key := encodeKey(&ga.keyBuf, kv)
		g, exists := ga.groups[key]
		if !exists {
			g = &group{
				keyVals:  append([]types.Value{}, kv...),
				states:   make([]aggState, nAggs),
				firstIdx: rrec[0].I,
				part:     -1,
				reserved: true,
			}
			ga.groups[key] = g
			porder = append(porder, g)
			ga.groupsCreated++
			createdHere++
			pendBytes += groupMemBytes(g.keyVals, nAggs)
			if err := reserve(false); err != nil {
				return fail(err)
			}
		}
		for ai := range ga.aggs.aggs {
			a := &ga.aggs.aggs[ai]
			if a.maskIdx >= 0 && !rrec[maskOff+a.maskIdx].IsTrue() {
				continue
			}
			g.states[ai].add(a.agg.Fn, rrec[argOff+ai])
		}
	}
	if err := reserve(true); err != nil {
		return fail(err)
	}
	return porder, nil
}

// closeSpillFiles removes every spill artifact (idempotent); registered
// with executor.onClose so mid-query abandonment leaves the spill
// directory clean.
func (ga *groupAccumulator) closeSpillFiles() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	for p := range ga.parts {
		pt := &ga.parts[p]
		if pt.rowsW != nil {
			pt.rowsW.Abort()
			pt.rowsW = nil
		}
		if pt.stateDump != nil {
			pt.stateDump.Close()
			pt.stateDump = nil
		}
		if pt.rowsF != nil {
			pt.rowsF.Close()
			pt.rowsF = nil
		}
	}
	for _, f := range ga.runs {
		f.Close()
	}
	ga.runs = nil
}

// memGroupStream streams in-memory groups in discovery order — the
// no-spill path, byte-identical to the pre-memctl emission. Each group's
// reservation is released as it streams out: the accumulator is sealed and
// unregistered by now, so holding the full table's budget through emission
// would squeeze downstream operators (join builds consuming this output)
// out of memory they could otherwise use. Groups never emitted (the query
// was abandoned mid-stream) stay charged until the tracker closes.
type memGroupStream struct {
	ga       *groupAccumulator
	groups   []*group
	keyWidth int
	aggs     []compiledAgg
	i        int
}

func (s *memGroupStream) next(dst Row) (int64, bool, error) {
	if s.i >= len(s.groups) {
		return 0, false, nil
	}
	g := s.groups[s.i]
	s.i++
	copy(dst, g.keyVals)
	for ai := range s.aggs {
		dst[s.keyWidth+ai] = g.states[ai].result(s.aggs[ai].agg)
	}
	if g.reserved {
		g.reserved = false
		gb := groupMemBytes(g.keyVals, len(s.aggs))
		atomic.AddInt64(&s.ga.resident, -gb)
		s.ga.tracker.Release(opGroupBy, gb)
	}
	return g.firstIdx, true, nil
}

// emitRunCursor walks one emit-run file; the file is removed as soon as
// the cursor exhausts it.
type emitRunCursor struct {
	f    *storage.SpillFile
	rd   *storage.SpillReader
	rec  []types.Value
	done bool
}

func (c *emitRunCursor) advance() error {
	ok, err := c.rd.Next(c.rec)
	if err != nil {
		return err
	}
	if !ok {
		c.done = true
		c.f.Close()
	}
	return nil
}

// runMergeStream merges emit runs by firstIdx; indices are globally unique
// (one per input row), so the merge order is total.
type runMergeStream struct {
	cursors []*emitRunCursor
}

func newRunMergeStream(runs []*storage.SpillFile, width int) (*runMergeStream, error) {
	s := &runMergeStream{cursors: make([]*emitRunCursor, 0, len(runs))}
	for _, f := range runs {
		c := &emitRunCursor{f: f, rd: f.NewReader(), rec: make([]types.Value, width)}
		if err := c.advance(); err != nil {
			return nil, err
		}
		s.cursors = append(s.cursors, c)
	}
	return s, nil
}

func (s *runMergeStream) next(dst Row) (int64, bool, error) {
	var best *emitRunCursor
	for _, c := range s.cursors {
		if c.done {
			continue
		}
		if best == nil || c.rec[0].I < best.rec[0].I {
			best = c
		}
	}
	if best == nil {
		return 0, false, nil
	}
	idx := best.rec[0].I
	copy(dst, best.rec[1:])
	if err := best.advance(); err != nil {
		return 0, false, err
	}
	return idx, true, nil
}

// groupEmitter renders one or more groupStreams (one per shard) into
// output batches, merging across streams by firstIdx — the same global
// first-seen order the serial accumulator emits natively.
type groupEmitter struct {
	streams   []groupStream
	width     int
	batchSize int

	heads  []Row
	idxs   []int64
	live   []bool
	primed bool
}

func (e *groupEmitter) NextBatch() (*vec.Batch, error) {
	if !e.primed {
		e.heads = make([]Row, len(e.streams))
		e.idxs = make([]int64, len(e.streams))
		e.live = make([]bool, len(e.streams))
		for i, s := range e.streams {
			e.heads[i] = make(Row, e.width)
			idx, ok, err := s.next(e.heads[i])
			if err != nil {
				return nil, err
			}
			e.idxs[i], e.live[i] = idx, ok
		}
		e.primed = true
	}
	bl := vec.NewBuilder(e.width, e.batchSize)
	for !bl.Full() {
		best := -1
		for i := range e.streams {
			if !e.live[i] {
				continue
			}
			if best < 0 || e.idxs[i] < e.idxs[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		bl.Append(e.heads[best])
		idx, ok, err := e.streams[best].next(e.heads[best])
		if err != nil {
			return nil, err
		}
		e.idxs[best], e.live[best] = idx, ok
	}
	return bl.Flush(), nil
}
