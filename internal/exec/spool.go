package exec

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// spoolState is the shared materialization of one spool group: the
// producer's rows encoded into a RowBuffer (write cost paid once), replayed
// by every consumer (read cost paid per consumer).
type spoolState struct {
	producer Iterator
	kinds    []types.Kind
	buf      *storage.RowBuffer
	done     bool
}

func (ex *executor) buildSpool(s *logical.Spool) (Iterator, error) {
	if ex.spools == nil {
		ex.spools = map[int]*spoolState{}
	}
	if s.Producer != nil {
		in, err := ex.build(s.Producer)
		if err != nil {
			return nil, err
		}
		kinds := make([]types.Kind, len(s.Cols))
		for i, c := range s.Cols {
			kinds[i] = c.Type
		}
		ex.spools[s.ID] = &spoolState{producer: in, kinds: kinds}
	}
	return &spoolIter{ex: ex, id: s.ID}, nil
}

// materialize drains the producer into the encoded buffer.
func (st *spoolState) materialize(m *Metrics) error {
	if st.done {
		return nil
	}
	st.buf = storage.NewRowBuffer(st.kinds)
	for {
		row, err := st.producer.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		m.addProcessed(1)
		m.addHashRows(1) // materialized state is held in memory/disk
		st.buf.Append(row)
	}
	st.buf.Seal()
	m.addSpoolWritten(st.buf.Bytes())
	st.done = true
	return nil
}

// spoolIter replays a spool group's materialized rows. The first Next()
// call of the first consumer triggers materialization.
type spoolIter struct {
	ex     *executor
	id     int
	reader *storage.RowReader
}

func (it *spoolIter) Next() (Row, error) {
	if it.reader == nil {
		st := it.ex.spools[it.id]
		if st == nil {
			return nil, fmt.Errorf("exec: spool #%d has no registered producer", it.id)
		}
		if err := st.materialize(it.ex.metrics); err != nil {
			return nil, err
		}
		it.ex.metrics.addSpoolRead(st.buf.Bytes())
		it.reader = st.buf.NewReader()
	}
	row := it.reader.Next()
	if row == nil {
		return nil, nil
	}
	it.ex.metrics.addProcessed(1)
	return row, nil
}
