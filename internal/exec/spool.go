package exec

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// spoolState is the shared materialization of one spool group: the
// producer's rows encoded into a RowBuffer (write cost paid once), replayed
// by every consumer (read cost paid per consumer). The buffer's encoded
// bytes are reserved against the query's memory budget; the reservation is
// held until the query closes because later consumers replay it.
type spoolState struct {
	producer BatchIterator
	kinds    []types.Kind
	tracker  *memctl.Tracker
	buf      *storage.RowBuffer
	done     bool
}

func (ex *executor) buildSpool(s *logical.Spool) (BatchIterator, error) {
	if ex.spools == nil {
		ex.spools = map[int]*spoolState{}
	}
	if s.Producer != nil {
		in, err := ex.buildConsumed(s.Producer)
		if err != nil {
			return nil, err
		}
		kinds := make([]types.Kind, len(s.Cols))
		for i, c := range s.Cols {
			kinds[i] = c.Type
		}
		ex.spools[s.ID] = &spoolState{producer: in, kinds: kinds, tracker: ex.tracker}
	}
	return &spoolIter{ex: ex, id: s.ID, width: len(s.Cols), batchSize: ex.opts.BatchSize}, nil
}

// materialize drains the producer into the encoded buffer batch-at-a-time.
func (st *spoolState) materialize(m *Metrics) error {
	if st.done {
		return nil
	}
	st.buf = storage.NewRowBuffer(st.kinds)
	row := make(Row, len(st.kinds))
	var reserved int64
	for {
		b, err := st.producer.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		m.addProcessed(int64(n))
		m.addHashRows(int64(n)) // materialized state is held in memory/disk
		for i := 0; i < n; i++ {
			b.Gather(i, row)
			st.buf.Append(row)
		}
		// Reserve the encoded buffer's growth after each batch.
		if grown := st.buf.Bytes(); grown > reserved {
			if err := st.tracker.Reserve(opSpool, grown-reserved); err != nil {
				return err
			}
			reserved = grown
		}
	}
	st.buf.Seal()
	m.addSpoolWritten(st.buf.Bytes())
	st.done = true
	return nil
}

// spoolIter replays a spool group's materialized rows in batches. The first
// NextBatch() call of the first consumer triggers materialization.
type spoolIter struct {
	ex        *executor
	id        int
	width     int
	batchSize int
	reader    *storage.RowReader
}

func (it *spoolIter) NextBatch() (*vec.Batch, error) {
	if it.reader == nil {
		st := it.ex.spools[it.id]
		if st == nil {
			return nil, fmt.Errorf("exec: spool #%d has no registered producer", it.id)
		}
		if err := st.materialize(it.ex.metrics); err != nil {
			return nil, err
		}
		it.ex.metrics.addSpoolRead(st.buf.Bytes())
		it.reader = st.buf.NewReader()
	}
	bl := vec.NewBuilder(it.width, it.batchSize)
	for !bl.Full() {
		row := it.reader.Next()
		if row == nil {
			break
		}
		bl.Append(row)
	}
	if n := bl.Len(); n > 0 {
		it.ex.metrics.addProcessed(int64(n))
	}
	return bl.Flush(), nil
}
