package exec

import (
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// buildFilter builds a filter; when the input is a scan of a partitioned
// table, conjuncts referencing only the partition column are peeled off
// into a partition pruner (the engine's analogue of Athena skipping S3
// prefixes), and the rest stay as the residual predicate.
func (ex *executor) buildFilter(f *logical.Filter) (Iterator, error) {
	if scan, ok := f.Input.(*logical.Scan); ok && scan.Table.PartitionColumn != "" {
		partCol := scan.ColumnFor(scan.Table.PartitionColumn)
		if partCol != nil {
			var pruneConjs, residual []expr.Expr
			allowed := map[expr.ColumnID]bool{partCol.ID: true}
			for _, c := range expr.Conjuncts(f.Cond) {
				if expr.RefersOnly(c, allowed) {
					pruneConjs = append(pruneConjs, c)
				} else {
					residual = append(residual, c)
				}
			}
			if len(pruneConjs) > 0 {
				cond := expr.And(pruneConjs...)
				env := &expr.SlotEnv{Slots: map[expr.ColumnID]int{partCol.ID: 0}}
				pruner := func(key types.Value) bool {
					env.Row = Row{key}
					return expr.Eval(cond, env).IsTrue()
				}
				in, err := ex.buildScan(scan, pruner)
				if err != nil {
					return nil, err
				}
				if len(residual) == 0 {
					return in, nil
				}
				ev, err := newEvaluator(expr.And(residual...), layoutOf(scan))
				if err != nil {
					return nil, err
				}
				return &filterIter{in: in, cond: ev, m: ex.metrics}, nil
			}
		}
	}
	in, err := ex.build(f.Input)
	if err != nil {
		return nil, err
	}
	ev, err := newEvaluator(f.Cond, layoutOf(f.Input))
	if err != nil {
		return nil, err
	}
	return &filterIter{in: in, cond: ev, m: ex.metrics}, nil
}

func (ex *executor) buildScan(s *logical.Scan, prune storage.Pruner) (Iterator, error) {
	parts, err := ex.store.ScanPartitions(s.Table.Name, s.ColNames, prune, &ex.metrics.Storage)
	if err != nil {
		return nil, err
	}
	return &scanIter{scan: s, parts: parts, m: ex.metrics}, nil
}

// scanIter streams rows out of the selected partitions' column chunks,
// decoding each value from the encoded chunk format (the engine's analogue
// of Parquet decode work).
type scanIter struct {
	scan  *logical.Scan
	parts []*storage.Partition
	m     *Metrics

	part    int
	rowIdx  int
	readers []storage.ChunkReader
}

func (it *scanIter) Next() (Row, error) {
	for {
		if it.part >= len(it.parts) {
			return nil, nil
		}
		p := it.parts[it.part]
		if it.readers == nil {
			it.readers = make([]storage.ChunkReader, len(it.scan.ColNames))
			for i, name := range it.scan.ColNames {
				it.readers[i] = p.Chunk(name).NewReader()
			}
		}
		if it.rowIdx >= p.NumRows {
			it.part++
			it.rowIdx = 0
			it.readers = nil
			continue
		}
		row := make(Row, len(it.readers))
		for i := range it.readers {
			row[i] = it.readers[i].Next()
		}
		it.rowIdx++
		it.m.addProcessed(1)
		return row, nil
	}
}

type filterIter struct {
	in   Iterator
	cond *evaluator
	m    *Metrics
}

func (it *filterIter) Next() (Row, error) {
	for {
		row, err := it.in.Next()
		if row == nil || err != nil {
			return nil, err
		}
		it.m.addProcessed(1)
		if it.cond.eval(row).IsTrue() {
			return row, nil
		}
	}
}

func (ex *executor) buildProject(p *logical.Project) (Iterator, error) {
	in, err := ex.build(p.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Input)
	evs := make([]*evaluator, len(p.Cols))
	for i, a := range p.Cols {
		ev, err := newEvaluator(a.E, layout)
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	return &projectIter{in: in, evs: evs, m: ex.metrics}, nil
}

type projectIter struct {
	in  Iterator
	evs []*evaluator
	m   *Metrics
}

func (it *projectIter) Next() (Row, error) {
	row, err := it.in.Next()
	if row == nil || err != nil {
		return nil, err
	}
	it.m.addProcessed(1)
	out := make(Row, len(it.evs))
	for i, ev := range it.evs {
		out[i] = ev.eval(row)
	}
	return out, nil
}

type valuesIter struct {
	rows [][]types.Value
	idx  int
}

func (it *valuesIter) Next() (Row, error) {
	if it.idx >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.idx]
	it.idx++
	return r, nil
}

type limitIter struct {
	in        Iterator
	remaining int64
}

func (it *limitIter) Next() (Row, error) {
	if it.remaining <= 0 {
		return nil, nil
	}
	row, err := it.in.Next()
	if row == nil || err != nil {
		return nil, err
	}
	it.remaining--
	return row, nil
}

// esrIter enforces the single-row contract of scalar subqueries: exactly
// one output row, NULL-extended when the input is empty, an error when the
// input has more than one row.
type esrIter struct {
	in    Iterator
	width int
	done  bool
}

func (it *esrIter) Next() (Row, error) {
	if it.done {
		return nil, nil
	}
	it.done = true
	first, err := it.in.Next()
	if err != nil {
		return nil, err
	}
	if first == nil {
		row := make(Row, it.width)
		for i := range row {
			row[i] = types.Unknown()
		}
		return row, nil
	}
	second, err := it.in.Next()
	if err != nil {
		return nil, err
	}
	if second != nil {
		return nil, errTooManyRows
	}
	return first, nil
}
