package exec

import (
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/scanshare"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// buildFilter builds a filter; when the input is a scan of a partitioned
// table, conjuncts referencing only the partition column are peeled off
// into a partition pruner (the engine's analogue of Athena skipping S3
// prefixes), and the rest stay as the residual predicate.
func (ex *executor) buildFilter(f *logical.Filter) (BatchIterator, error) {
	if scan, ok := f.Input.(*logical.Scan); ok {
		if pruner, residual := splitPartitionPrune(scan, f.Cond); pruner != nil {
			prev := ex.sideCtrls[scan]
			in, err := ex.buildScan(scan, pruner)
			if err != nil {
				return nil, err
			}
			if residual == nil {
				return in, nil
			}
			// Within surviving partitions the partition column is constant
			// and the peeled conjuncts hold, so the residual alone decides
			// survivor sets; pruned rows would have been charged at the scan
			// emit and the filter input (factor 2).
			ex.configureScanSkip(scan, prev, expr.Conjuncts(residual), 2)
			return ex.newFilterIter(in, residual, layoutOf(scan))
		}
	}
	var prev *scanCtrlReg
	scan, isScan := f.Input.(*logical.Scan)
	if isScan {
		prev = ex.sideCtrls[scan]
	}
	in, err := ex.build(f.Input)
	if err != nil {
		return nil, err
	}
	if isScan {
		ex.configureScanSkip(scan, prev, expr.Conjuncts(f.Cond), 2)
	}
	return ex.newFilterIter(in, f.Cond, layoutOf(f.Input))
}

// splitPartitionPrune peels the conjuncts of cond that reference only the
// scan's partition column into a storage.Pruner, returning the pruner and
// the residual predicate (nil when every conjunct pruned). A nil pruner
// means nothing peeled — the caller filters the unpruned scan with cond.
// Both the pull filter and the push-pipeline compiler route through this
// helper, so the two execution models scan exactly the same partitions.
func splitPartitionPrune(scan *logical.Scan, cond expr.Expr) (storage.Pruner, expr.Expr) {
	pruner, _, _, residual := splitPartitionPruneCond(scan, cond)
	return pruner, residual
}

// splitPartitionPruneCond is splitPartitionPrune exposing the peeled prune
// predicate and the partition column it ranges over, for layers that
// fingerprint pruning work (the chain-shape cache) rather than execute it.
func splitPartitionPruneCond(scan *logical.Scan, cond expr.Expr) (storage.Pruner, expr.Expr, *expr.Column, expr.Expr) {
	if scan.Table.PartitionColumn == "" {
		return nil, nil, nil, cond
	}
	partCol := scan.ColumnFor(scan.Table.PartitionColumn)
	if partCol == nil {
		return nil, nil, nil, cond
	}
	var pruneConjs, residual []expr.Expr
	allowed := map[expr.ColumnID]bool{partCol.ID: true}
	for _, c := range expr.Conjuncts(cond) {
		if expr.RefersOnly(c, allowed) {
			pruneConjs = append(pruneConjs, c)
		} else {
			residual = append(residual, c)
		}
	}
	if len(pruneConjs) == 0 {
		return nil, nil, nil, cond
	}
	pruneCond := expr.And(pruneConjs...)
	env := &expr.SlotEnv{Slots: map[expr.ColumnID]int{partCol.ID: 0}}
	pruner := func(key types.Value) bool {
		env.Row = Row{key}
		return expr.Eval(pruneCond, env).IsTrue()
	}
	if len(residual) == 0 {
		return pruner, pruneCond, partCol, nil
	}
	return pruner, pruneCond, partCol, expr.And(residual...)
}

// newFilterIter compiles a filter predicate. The default path is a
// single-mask family — flattened conjuncts evaluated progressively over
// shrinking survivors, with bitmap intermediates; under Options.NaiveMasks
// the predicate compiles to one value-vector batch evaluator instead.
func (ex *executor) newFilterIter(in BatchIterator, cond expr.Expr, layout map[expr.ColumnID]int) (BatchIterator, error) {
	if ex.opts.NaiveMasks {
		ev, err := newBatchEvaluator(cond, layout)
		if err != nil {
			return nil, err
		}
		return &filterIter{in: in, cond: ev, m: ex.metrics}, nil
	}
	fam, err := newMaskFamily([]expr.Expr{cond}, layout)
	if err != nil {
		return nil, err
	}
	return &filterIter{in: in, fam: fam, m: ex.metrics}, nil
}

// scanSource resolves a scan leaf's partitions and, with sharing on, opens
// its scan-share session. Shared by the pull scan builder and the
// push-pipeline compiler so both charge the same BytesScanned and decode
// accounting. The session closes after the leaf's workers drain (closers
// run in append order), so callers must append it after their own closer.
func (ex *executor) scanSource(s *logical.Scan, prune storage.Pruner) ([]*storage.Partition, *scanshare.Scan, error) {
	parts, err := ex.store.ScanPartitions(s.Table.Name, s.ColNames, prune, &ex.metrics.Storage)
	if err != nil {
		return nil, nil, err
	}
	var share *scanshare.Scan
	if ex.share != nil {
		share = ex.share.Open(s.Table.Name, parts, s.ColNames, &ex.metrics.Share)
	}
	if !ex.opts.NoSkip {
		// Register a skip controller for this leaf; the filter, chain
		// compiler, or a hash join above will configure it with predicates.
		ex.registerScanCtrl(s, &skipController{m: ex.metrics, cols: s.ColNames, rcDepth: ex.rcDepth})
	}
	return parts, share, nil
}

func (ex *executor) buildScan(s *logical.Scan, prune storage.Pruner) (BatchIterator, error) {
	parts, share, err := ex.scanSource(s, prune)
	if err != nil {
		return nil, err
	}
	ctrl, _ := ex.lookupScanCtrl(s)
	if ex.opts.Parallelism > 1 {
		morsels := buildMorsels(parts, morselTarget(parts, ex.opts.BatchSize, ex.opts.Parallelism))
		if len(morsels) > 1 {
			it := newParallelScan(s.ColNames, morsels, ex.opts.BatchSize, ex.opts.Parallelism, ex.metrics, ex.pool)
			it.share = share
			it.ctrl = ctrl
			ex.closers = append(ex.closers, it.close)
			if share != nil {
				ex.closers = append(ex.closers, share.Close)
			}
			return it, nil
		}
	}
	if share != nil {
		ex.closers = append(ex.closers, share.Close)
	}
	return &scanIter{cols: s.ColNames, parts: parts, batchSize: ex.opts.BatchSize, m: ex.metrics, share: share, ctrl: ctrl}, nil
}

// decodePartition is the single decode entry point for both scan leaves:
// through the scan-share session when sharing is on, directly otherwise.
// Physical decode accounting (Metrics.Share) is charged either way, so
// shared-vs-unshared BytesDecoded comparisons are meaningful.
func decodePartition(p *storage.Partition, cols []string, share *scanshare.Scan, stop <-chan struct{}, m *Metrics) ([][]types.Value, error) {
	if share != nil {
		return share.Decode(p, stop)
	}
	decoded, err := p.DecodeColumns(cols)
	if err != nil {
		return nil, err
	}
	for _, c := range cols {
		m.Share.AddDecoded(p.Chunk(c).Bytes)
	}
	return decoded, nil
}

// scanIter is the serial scan leaf: it decodes each partition's column
// chunks in one pass (the batch analogue of Parquet decode work) and emits
// zero-copy batch-sized windows over the decoded vectors.
type scanIter struct {
	cols      []string
	parts     []*storage.Partition
	batchSize int
	m         *Metrics
	share     *scanshare.Scan
	ctrl      *skipController

	part    int
	decoded [][]types.Value
	rows    int
	off     int
}

func (it *scanIter) NextBatch() (*vec.Batch, error) {
	for {
		if it.decoded == nil {
			if it.part >= len(it.parts) {
				return nil, nil
			}
			p := it.parts[it.part]
			if it.ctrl.shouldPrune(p) {
				// The serial scan runs in its consumer's pull, so recharging
				// here lands at exactly the stream position the partition's
				// batches would have occupied — LIMIT truncation included.
				it.ctrl.recharge(int64(p.NumRows))
				it.part++
				continue
			}
			d, err := decodePartition(p, it.cols, it.share, nil, it.m)
			if err != nil {
				return nil, err
			}
			it.decoded, it.rows, it.off = d, p.NumRows, 0
		}
		if it.off >= it.rows {
			it.decoded = nil
			it.part++
			continue
		}
		hi := it.off + it.batchSize
		if hi > it.rows {
			hi = it.rows
		}
		cols := make([][]types.Value, len(it.decoded))
		for c := range it.decoded {
			cols[c] = it.decoded[c][it.off:hi]
		}
		n := hi - it.off
		it.off = hi
		it.m.addProcessed(int64(n))
		return vec.NewDense(cols, n), nil
	}
}

// filterIter qualifies rows by building a selection vector over its input
// batches — survivors are never materialized here, only marked. Exactly
// one of fam (bitmap mask family) and cond (naive baseline) is set.
type filterIter struct {
	in   BatchIterator
	fam  *maskFamily
	cond *batchEvaluator
	m    *Metrics
}

func (it *filterIter) NextBatch() (*vec.Batch, error) {
	for {
		b, err := it.in.NextBatch()
		if b == nil || err != nil {
			return nil, err
		}
		n := b.Len()
		it.m.addProcessed(int64(n))
		var sel []int
		if it.fam != nil {
			truth := it.fam.eval(b)[0]
			count := truth.Count()
			if count == n && b.Sel == nil {
				return b, nil
			}
			if count == 0 {
				continue
			}
			sel = make([]int, 0, count)
			for i := 0; i < n; i++ {
				if truth.True(i) {
					sel = append(sel, b.RowIdx(i))
				}
			}
			return b.WithSel(sel), nil
		}
		vals := it.cond.eval(b)
		sel = make([]int, 0, n)
		for i := 0; i < n; i++ {
			if vals[i].IsTrue() {
				sel = append(sel, b.RowIdx(i))
			}
		}
		switch {
		case len(sel) == 0:
			continue
		case len(sel) == n && b.Sel == nil:
			return b, nil
		default:
			return b.WithSel(sel), nil
		}
	}
}

func (ex *executor) buildProject(p *logical.Project) (BatchIterator, error) {
	in, err := ex.build(p.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Input)
	evs := make([]batchFn, len(p.Cols))
	for i, a := range p.Cols {
		fn, err := compileBatchExpr(a.E, layout)
		if err != nil {
			return nil, err
		}
		evs[i] = fn
	}
	return &projectIter{in: in, evs: evs, m: ex.metrics}, nil
}

// projectIter evaluates each output expression vector-wise over the active
// rows, producing a dense batch (projection is the materialization point
// where upstream selections compact away).
type projectIter struct {
	in  BatchIterator
	evs []batchFn
	m   *Metrics
}

func (it *projectIter) NextBatch() (*vec.Batch, error) {
	b, err := it.in.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	n := b.Len()
	it.m.addProcessed(int64(n))
	cols := make([][]types.Value, len(it.evs))
	for i, fn := range it.evs {
		out := make([]types.Value, n)
		fn(b, out)
		cols[i] = out
	}
	return vec.NewDense(cols, n), nil
}

type valuesIter struct {
	rows      [][]types.Value
	width     int
	batchSize int
	idx       int
}

func (it *valuesIter) NextBatch() (*vec.Batch, error) {
	if it.idx >= len(it.rows) {
		return nil, nil
	}
	bl := vec.NewBuilder(it.width, it.batchSize)
	for it.idx < len(it.rows) && !bl.Full() {
		bl.Append(it.rows[it.idx])
		it.idx++
	}
	return bl.Flush(), nil
}

type limitIter struct {
	in        BatchIterator
	remaining int64
}

func (it *limitIter) NextBatch() (*vec.Batch, error) {
	if it.remaining <= 0 {
		return nil, nil
	}
	b, err := it.in.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	n := int64(b.Len())
	if n <= it.remaining {
		it.remaining -= n
		return b, nil
	}
	// Trim the batch to the first remaining active rows.
	sel := make([]int, it.remaining)
	for i := range sel {
		sel[i] = b.RowIdx(i)
	}
	it.remaining = 0
	return b.WithSel(sel), nil
}

// esrIter enforces the single-row contract of scalar subqueries: exactly
// one output row, NULL-extended when the input is empty, an error when the
// input has more than one row.
type esrIter struct {
	in    BatchIterator
	width int
	done  bool
}

func (it *esrIter) NextBatch() (*vec.Batch, error) {
	if it.done {
		return nil, nil
	}
	it.done = true
	var first Row
	for {
		b, err := it.in.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		if first != nil || n > 1 {
			return nil, errTooManyRows
		}
		first = make(Row, it.width)
		b.Gather(0, first)
	}
	if first == nil {
		first = make(Row, it.width)
		for i := range first {
			first[i] = types.Unknown()
		}
	}
	bl := vec.NewBuilder(it.width, 1)
	bl.Append(first)
	return bl.Flush(), nil
}
