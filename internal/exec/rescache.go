package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/logical"
	"repro/internal/rescache"
	"repro/internal/types"
	"repro/internal/vec"
)

// This file wires the semantic result cache (internal/rescache) into plan
// building. buildResultCached intercepts executor.build ahead of every
// other dispatch: when the operator is an eligible sub-plan shape (a
// Filter/Project chain over one Scan, optionally through one GroupBy) the
// run either replays a cached result — skipping scan, decode and
// evaluation while re-charging the exact as-if-solo logical metrics the
// original computation recorded — or builds the subtree against a private
// Metrics sink and tees its output into a candidate entry, offering it for
// cost-weighted admission at EOF.

// buildResultCached returns (it, true, nil) when it intercepted op — either
// a cache-hit replay or a capturing build. ok=false means the caller should
// build op normally.
func (ex *executor) buildResultCached(op logical.Operator) (BatchIterator, bool, error) {
	if ex.rcache == nil || ex.rcDepth > 0 || ex.noPush > 0 {
		return nil, false, nil
	}
	// Begin snapshots the table's partition-set signature BEFORE the
	// subtree build enumerates partitions (the cross-cache epoch-ordering
	// invariant): an Append racing this query can at worst produce a dead
	// entry that fails offer-time revalidation, never a stale hit.
	tx := ex.rcache.Begin(op, ex.store)
	if tx == nil {
		return nil, false, nil
	}
	if ent, ok := tx.Lookup(); ok {
		ex.metrics.ResultCache.Hits++
		ex.metrics.ResultCache.ServedBytes += ent.Bytes
		chargeCost(ex.metrics, ent.Cost)
		return &rcReplayIter{rows: ent.Rows, width: len(op.Schema()), batchSize: ex.opts.BatchSize}, true, nil
	}
	ex.metrics.ResultCache.Misses++

	// Miss: build the subtree against a private Metrics so the entry's cost
	// is exactly the sub-plan's own work. Iterators capture the *Metrics at
	// build time, so swapping the pointer for the duration of the recursive
	// build isolates every charge the subtree will ever make; rcDepth
	// suppresses nested probes so each query caches at most the topmost
	// eligible root along any path.
	parent := ex.metrics
	priv := &Metrics{}
	ex.metrics = priv
	ex.rcDepth++
	in, err := ex.build(op)
	ex.rcDepth--
	ex.metrics = parent
	if err != nil {
		return nil, true, err
	}
	t := &rcTeeIter{in: in, tx: tx, priv: priv, parent: parent, limit: ex.rcache.MaxEntryBytes()}
	// finish must also run on mid-query abandonment (error, cancellation):
	// the private counters fold into the parent exactly once either way,
	// after the subtree's own closers have drained its workers.
	ex.onClose(t.finish)
	return t, true, nil
}

// chargeCost replays an entry's as-if-solo logical charges onto m. The
// physical counters (Share, Pipeline) stay untouched: a hit performs no
// decode and compiles no pipeline, and those counters report what actually
// ran.
func chargeCost(m *Metrics, c rescache.CostMetrics) {
	m.Storage.AddBytes(c.BytesScanned)
	m.Storage.AddRows(c.RowsScanned)
	m.addProcessed(c.RowsProcessed)
	m.addHashRows(c.HashRows)
	m.addMaskPrefixHits(c.MaskPrefixHits)
}

// absorb folds the private capture counters into the parent metrics so a
// miss run reports exactly what a cache-off run would.
func absorb(parent, priv *Metrics) {
	parent.Storage.AddBytes(atomic.LoadInt64(&priv.Storage.BytesScanned))
	parent.Storage.AddRows(atomic.LoadInt64(&priv.Storage.RowsScanned))
	atomic.AddInt64(&parent.Share.BytesDecoded, atomic.LoadInt64(&priv.Share.BytesDecoded))
	atomic.AddInt64(&parent.Share.ChunksDecoded, atomic.LoadInt64(&priv.Share.ChunksDecoded))
	atomic.AddInt64(&parent.Share.SharedHits, atomic.LoadInt64(&priv.Share.SharedHits))
	atomic.AddInt64(&parent.Share.CacheHits, atomic.LoadInt64(&priv.Share.CacheHits))
	atomic.AddInt64(&parent.Share.StreamHits, atomic.LoadInt64(&priv.Share.StreamHits))
	parent.addProcessed(atomic.LoadInt64(&priv.RowsProcessed))
	parent.addHashRows(atomic.LoadInt64(&priv.HashRows))
	parent.addSpoolWritten(atomic.LoadInt64(&priv.SpoolBytesWritten))
	parent.addSpoolRead(atomic.LoadInt64(&priv.SpoolBytesRead))
	parent.addMaskPrefixHits(atomic.LoadInt64(&priv.MaskPrefixHits))
	parent.addFusedPipelines(atomic.LoadInt64(&priv.Pipeline.FusedPipelines))
	parent.addPipelineBatches(atomic.LoadInt64(&priv.Pipeline.PipelineBatches))
	parent.addMaterializedSaved(atomic.LoadInt64(&priv.Pipeline.MaterializedBatchesSaved))
	// Skip counters are physical (what actually happened), so a capturing
	// miss run folds them up; a replay re-charges logical cost only and
	// correctly reports zero prunes (chargeCost leaves Skip untouched).
	parent.addChunksPruned(atomic.LoadInt64(&priv.Skip.ChunksPruned))
	parent.addPartitionsPruned(atomic.LoadInt64(&priv.Skip.PartitionsPruned))
	parent.addBloomPruned(atomic.LoadInt64(&priv.Skip.BloomPruned))
	parent.addPrunedBytes(atomic.LoadInt64(&priv.Skip.PrunedBytes))
}

// costOf extracts an entry's cost metrics from a drained private capture.
func costOf(priv *Metrics) rescache.CostMetrics {
	return rescache.CostMetrics{
		BytesScanned:   atomic.LoadInt64(&priv.Storage.BytesScanned),
		RowsScanned:    atomic.LoadInt64(&priv.Storage.RowsScanned),
		RowsProcessed:  atomic.LoadInt64(&priv.RowsProcessed),
		HashRows:       atomic.LoadInt64(&priv.HashRows),
		MaskPrefixHits: atomic.LoadInt64(&priv.MaskPrefixHits),
	}
}

// rcTeeIter streams the captured subtree's batches through unchanged while
// materializing a copy of every row. At EOF it offers the materialized
// result for admission; a result growing past the cache's per-entry bound
// abandons capture (the stream continues) and counts as an admission
// rejection.
type rcTeeIter struct {
	in        BatchIterator
	tx        *rescache.Tx
	priv      *Metrics
	parent    *Metrics
	limit     int64
	rows      [][]types.Value
	bytes     int64
	abandoned bool
	eof       bool
	once      sync.Once
}

func (t *rcTeeIter) NextBatch() (*vec.Batch, error) {
	b, err := t.in.NextBatch()
	if err != nil {
		return nil, err
	}
	if b == nil {
		t.eof = true
		t.finish()
		return nil, nil
	}
	if !t.abandoned {
		n := b.Len()
		w := b.Width()
		for i := 0; i < n; i++ {
			row := make([]types.Value, w)
			b.Gather(i, row)
			t.rows = append(t.rows, row)
			t.bytes += rescache.RowBytes(row)
		}
		if t.bytes > t.limit {
			t.abandoned = true
			t.rows = nil
		}
	}
	return b, nil
}

// finish folds the private metrics into the parent exactly once and, on a
// cleanly drained stream, offers the captured result for admission.
func (t *rcTeeIter) finish() {
	t.once.Do(func() {
		if t.eof {
			if t.abandoned {
				t.parent.ResultCache.AdmissionRejects++
			} else {
				rows := t.rows
				if rows == nil {
					rows = [][]types.Value{}
				}
				admitted, evicted := t.tx.Offer(rows, t.bytes, costOf(t.priv))
				if !admitted {
					t.parent.ResultCache.AdmissionRejects++
				}
				t.parent.ResultCache.EvictedBytes += evicted
			}
		}
		absorb(t.parent, t.priv)
	})
}

// rcReplayIter serves a cached result as dense batches.
type rcReplayIter struct {
	rows      [][]types.Value
	width     int
	batchSize int
	idx       int
}

func (it *rcReplayIter) NextBatch() (*vec.Batch, error) {
	if it.idx >= len(it.rows) {
		return nil, nil
	}
	bl := vec.NewBuilder(it.width, it.batchSize)
	for it.idx < len(it.rows) && !bl.Full() {
		bl.Append(it.rows[it.idx])
		it.idx++
	}
	return bl.Flush(), nil
}
