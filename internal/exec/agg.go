package exec

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
	"repro/internal/vec"
)

// aggState accumulates one aggregate function's value.
type aggState struct {
	count int64
	sumF  float64
	sumI  int64
	min   types.Value
	max   types.Value
	seen  bool
}

func (s *aggState) add(fn expr.AggFunc, v types.Value) {
	switch fn {
	case expr.AggCountStar:
		s.count++
	case expr.AggCount:
		if !v.Null {
			s.count++
		}
	case expr.AggSum, expr.AggAvg:
		if !v.Null {
			s.count++
			s.seen = true
			if v.Kind == types.KindFloat64 {
				s.sumF += v.F
			} else {
				s.sumI += v.I
				s.sumF += float64(v.I)
			}
		}
	case expr.AggMin:
		if !v.Null && (!s.seen || types.Compare(v, s.min) < 0) {
			s.min = v
			s.seen = true
		}
	case expr.AggMax:
		if !v.Null && (!s.seen || types.Compare(v, s.max) > 0) {
			s.max = v
			s.seen = true
		}
	}
}

func (s *aggState) result(agg expr.AggCall) types.Value {
	switch agg.Fn {
	case expr.AggCountStar, expr.AggCount:
		return types.Int(s.count)
	case expr.AggSum:
		if !s.seen {
			return types.NullOf(agg.ResultType())
		}
		if agg.ResultType() == types.KindInt64 {
			return types.Int(s.sumI)
		}
		return types.Float(s.sumF)
	case expr.AggAvg:
		if s.count == 0 {
			return types.NullOf(types.KindFloat64)
		}
		return types.Float(s.sumF / float64(s.count))
	case expr.AggMin:
		if !s.seen {
			return types.NullOf(agg.ResultType())
		}
		return s.min
	default: // Max
		if !s.seen {
			return types.NullOf(agg.ResultType())
		}
		return s.max
	}
}

// compiledAgg is an aggregate with a bound argument evaluator and an index
// into the shared distinct-mask table (-1 = no mask).
type compiledAgg struct {
	agg     expr.AggCall
	arg     *evaluator
	maskIdx int
}

// compiledAggs shares mask evaluation across aggregates: structurally
// equivalent masks (common when many FILTERed aggregates fuse over one
// input, as in Q09's buckets) are evaluated once per row.
type compiledAggs struct {
	aggs    []compiledAgg
	masks   []*evaluator
	maskAst []expr.Expr
	results []bool // per-row scratch, reused
}

func compileAggs(aggs []logical.AggAssign, layout map[expr.ColumnID]int) (*compiledAggs, error) {
	out := &compiledAggs{aggs: make([]compiledAgg, len(aggs))}
	for i, a := range aggs {
		ca := compiledAgg{agg: a.Agg, maskIdx: -1}
		var err error
		if a.Agg.Arg != nil {
			if ca.arg, err = newEvaluator(a.Agg.Arg, layout); err != nil {
				return nil, err
			}
		}
		if a.Agg.Mask != nil && !expr.IsTrueLiteral(a.Agg.Mask) {
			found := -1
			for k, ast := range out.maskAst {
				if expr.Equal(ast, a.Agg.Mask) {
					found = k
					break
				}
			}
			if found < 0 {
				ev, err := newEvaluator(a.Agg.Mask, layout)
				if err != nil {
					return nil, err
				}
				out.masks = append(out.masks, ev)
				out.maskAst = append(out.maskAst, a.Agg.Mask)
				found = len(out.masks) - 1
			}
			ca.maskIdx = found
		}
		out.aggs[i] = ca
	}
	out.results = make([]bool, len(out.masks))
	return out, nil
}

// evalMasks evaluates each distinct mask once for the row.
func (ca *compiledAggs) evalMasks(row Row) {
	for i, ev := range ca.masks {
		ca.results[i] = ev.eval(row).IsTrue()
	}
}

func (ex *executor) buildGroupBy(g *logical.GroupBy) (BatchIterator, error) {
	in, err := ex.build(g.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(g.Input)
	keyIdx := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		idx, ok := layout[k.ID]
		if !ok {
			return nil, errUnbound(k)
		}
		keyIdx[i] = idx
	}
	scalar := len(g.Keys) == 0
	// Keyed aggregations partition across the worker pool: every group lives
	// entirely in the shard its key hashes to, so shards need no
	// coordination and the merged output is byte-identical to the serial
	// order. Scalar aggregation stays serial — one group means one float
	// accumulation order, which parallel partial sums would change.
	if !scalar && ex.opts.Parallelism > 1 {
		accs := make([]*groupAccumulator, ex.opts.Parallelism)
		for p := range accs {
			if accs[p], err = newGroupAccumulator(g, layout, keyIdx); err != nil {
				return nil, err
			}
		}
		return &parallelGroupByIter{
			in: in, keyIdx: keyIdx, accs: accs, pool: ex.pool,
			batchSize: ex.opts.BatchSize, m: ex.metrics,
		}, nil
	}
	acc, err := newGroupAccumulator(g, layout, keyIdx)
	if err != nil {
		return nil, err
	}
	return &groupByIter{
		in: in, acc: acc, scalar: scalar, batchSize: ex.opts.BatchSize, m: ex.metrics,
	}, nil
}

func errUnbound(c *expr.Column) error {
	return &unboundError{col: c}
}

type unboundError struct{ col *expr.Column }

func (e *unboundError) Error() string {
	return "exec: column " + e.col.String() + " not produced by input"
}

type group struct {
	keyVals []types.Value
	states  []aggState
	// firstIdx is the global input row index of the group's first row. The
	// serial accumulator discovers groups in ascending firstIdx order by
	// construction; the parallel merge sorts shards back into that exact
	// order, which is what keeps parallel output byte-identical.
	firstIdx int64
}

// groupAccumulator is one hash-aggregation shard: a group table plus its own
// compiled mask/argument evaluators (batch evaluators own scratch buffers
// and must not be shared across goroutines). The serial aggregation uses a
// single accumulator over every row; the parallel aggregation gives each
// worker one accumulator and routes rows by key hash, so a given group's
// rows always land in the same shard in global input order — per-group
// accumulation (including float sums) is order-identical to serial.
type groupAccumulator struct {
	keyIdx  []int
	aggs    *compiledAggs
	maskEvs []*batchEvaluator
	argEvs  []*batchEvaluator

	groups map[string]*group
	order  []*group // discovery order; ascending firstIdx within one shard
	keyBuf strings.Builder
	kv     []types.Value

	// per-batch scratch
	groupRow []*group
	maskLog  [][]int
	maskSub  []*vec.Batch
	scalarG  *group
}

func newGroupAccumulator(g *logical.GroupBy, layout map[expr.ColumnID]int, keyIdx []int) (*groupAccumulator, error) {
	aggs, err := compileAggs(g.Aggs, layout)
	if err != nil {
		return nil, err
	}
	// The consume loop is vector-driven: masks and aggregate arguments are
	// evaluated once per batch, and only key values are touched per row.
	maskEvs := make([]*batchEvaluator, len(aggs.maskAst))
	for i, ast := range aggs.maskAst {
		if maskEvs[i], err = newBatchEvaluator(ast, layout); err != nil {
			return nil, err
		}
	}
	argEvs := make([]*batchEvaluator, len(g.Aggs))
	for i, a := range g.Aggs {
		if argEvs[i], err = newBatchEvaluator(a.Agg.Arg, layout); err != nil {
			return nil, err
		}
	}
	return &groupAccumulator{
		keyIdx: keyIdx, aggs: aggs, maskEvs: maskEvs, argEvs: argEvs,
		groups:  make(map[string]*group),
		kv:      make([]types.Value, len(keyIdx)),
		maskLog: make([][]int, len(maskEvs)),
		maskSub: make([]*vec.Batch, len(maskEvs)),
	}, nil
}

// consumeBatch accumulates one batch into the shard. base+log[i] is the
// global input row index of the batch's i-th active row (log nil means the
// identity mapping, i.e. the batch holds consecutive input rows starting at
// base); it pins each new group's firstIdx for the deterministic merge.
func (ga *groupAccumulator) consumeBatch(b *vec.Batch, base int64, log []int) {
	n := b.Len()
	if n == 0 {
		return
	}
	// Group assignment per row (accumulation order below stays row-major
	// per group, so float sums match the row engine bit-for-bit).
	scalar := len(ga.keyIdx) == 0
	if cap(ga.groupRow) < n {
		ga.groupRow = make([]*group, n)
	}
	groupRow := ga.groupRow[:n]
	if scalar {
		if ga.scalarG == nil {
			ga.scalarG = &group{states: make([]aggState, len(ga.aggs.aggs))}
			ga.groups[""] = ga.scalarG
			ga.order = append(ga.order, ga.scalarG)
		}
	} else {
		for i := 0; i < n; i++ {
			for k, idx := range ga.keyIdx {
				ga.kv[k] = b.Value(idx, i)
			}
			key := encodeKey(&ga.keyBuf, ga.kv)
			g, ok := ga.groups[key]
			if !ok {
				idx := int64(i)
				if log != nil {
					idx = int64(log[i])
				}
				g = &group{
					keyVals:  append([]types.Value{}, ga.kv...),
					states:   make([]aggState, len(ga.aggs.aggs)),
					firstIdx: base + idx,
				}
				ga.groups[key] = g
				ga.order = append(ga.order, g)
			}
			groupRow[i] = g
		}
	}

	// Masks become selection vectors, shared by every aggregate that
	// carries the same FILTER expression.
	for mi, ev := range ga.maskEvs {
		vals := ev.eval(b)
		mlog := ga.maskLog[mi][:0]
		var phys []int
		for i := 0; i < n; i++ {
			if vals[i].IsTrue() {
				mlog = append(mlog, i)
				phys = append(phys, b.RowIdx(i))
			}
		}
		ga.maskLog[mi] = mlog
		ga.maskSub[mi] = b.WithSel(phys)
	}

	// Tight accumulation loop per aggregate.
	for ai := range ga.aggs.aggs {
		a := &ga.aggs.aggs[ai]
		sub, mlog := b, []int(nil)
		if a.maskIdx >= 0 {
			sub, mlog = ga.maskSub[a.maskIdx], ga.maskLog[a.maskIdx]
			if len(mlog) == 0 {
				continue
			}
		}
		count := sub.Len()
		var vals []types.Value
		if ga.argEvs[ai] != nil {
			vals = ga.argEvs[ai].eval(sub)
		}
		fn := a.agg.Fn
		if scalar {
			st := &ga.scalarG.states[ai]
			if vals == nil {
				for j := 0; j < count; j++ {
					st.add(fn, types.Value{})
				}
			} else {
				for j := range vals {
					st.add(fn, vals[j])
				}
			}
		} else {
			for j := 0; j < count; j++ {
				li := j
				if mlog != nil {
					li = mlog[j]
				}
				var v types.Value
				if vals != nil {
					v = vals[j]
				}
				groupRow[li].states[ai].add(fn, v)
			}
		}
	}
}

// emitGroups renders groups into output batches; shared by the serial and
// parallel aggregation iterators so both produce identical batch shapes.
func emitGroups(groups []*group, emit *int, keyWidth int, aggs []compiledAgg, batchSize int) *vec.Batch {
	if *emit >= len(groups) {
		return nil
	}
	width := keyWidth + len(aggs)
	bl := vec.NewBuilder(width, batchSize)
	out := make(Row, width)
	for *emit < len(groups) && !bl.Full() {
		g := groups[*emit]
		*emit++
		copy(out, g.keyVals)
		for i := range aggs {
			out[keyWidth+i] = g.states[i].result(aggs[i].agg)
		}
		bl.Append(out)
	}
	return bl.Flush()
}

// groupByIter is a blocking hash aggregation with per-aggregate masks
// (§III.E), run serially through a single accumulator. Group keys are
// compared SQL-DISTINCT-style: NULLs group together.
type groupByIter struct {
	in        BatchIterator
	acc       *groupAccumulator
	scalar    bool
	batchSize int
	m         *Metrics

	built bool
	emit  int
}

func (it *groupByIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.consume(); err != nil {
			return nil, err
		}
	}
	return emitGroups(it.acc.order, &it.emit, len(it.acc.keyIdx), it.acc.aggs.aggs, it.batchSize), nil
}

func (it *groupByIter) consume() error {
	var base int64
	for {
		b, err := it.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		it.m.addProcessed(int64(n))
		it.acc.consumeBatch(b, base, nil)
		base += int64(n)
	}
	it.m.addHashRows(int64(len(it.acc.order)))
	// A scalar aggregate over empty input still produces one default row.
	if it.scalar && len(it.acc.order) == 0 {
		it.acc.order = append(it.acc.order, &group{states: make([]aggState, len(it.acc.aggs.aggs))})
	}
	it.built = true
	return nil
}

// parallelGroupByIter is the partition-wise parallel aggregation: a reader
// pulls input batches in order, hashes each row's group key with the vec
// kernel, and broadcasts the batch to one worker per shard. Worker p
// accumulates exactly the rows whose key hash maps to shard p, in global
// input order, into its own accumulator. Because a group's rows all carry
// the same key hash, each group is built by exactly one shard with the same
// per-group accumulation order as the serial path; the final merge sorts
// groups by first-occurrence index, reproducing serial output bytes.
type parallelGroupByIter struct {
	in        BatchIterator
	keyIdx    []int
	accs      []*groupAccumulator
	pool      *workerPool
	batchSize int
	m         *Metrics

	built  bool
	merged []*group
	emit   int
}

// aggTask is one input batch broadcast to every shard worker. hashes[i] is
// the group-key hash of the batch's i-th active row; base is the global
// input row index of the batch's first active row.
type aggTask struct {
	b      *vec.Batch
	hashes []uint64
	base   int64
}

func (it *parallelGroupByIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.consume(); err != nil {
			return nil, err
		}
	}
	return emitGroups(it.merged, &it.emit, len(it.keyIdx), it.accs[0].aggs.aggs, it.batchSize), nil
}

func (it *parallelGroupByIter) consume() error {
	shards := len(it.accs)
	chans := make([]chan aggTask, shards)
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		chans[p] = make(chan aggTask, 2)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			acc := it.accs[p]
			var log, phys []int
			for task := range chans[p] {
				// CPU work runs under a shared pool slot; the slot is never
				// held while waiting on the channel, so stacked parallel
				// operators cannot starve each other into deadlock.
				it.pool.acquire()
				n := task.b.Len()
				log, phys = log[:0], phys[:0]
				for i := 0; i < n; i++ {
					if int(task.hashes[i]%uint64(shards)) == p {
						log = append(log, i)
						phys = append(phys, task.b.RowIdx(i))
					}
				}
				if len(log) > 0 {
					acc.consumeBatch(task.b.WithSel(phys), task.base, log)
				}
				it.pool.release()
			}
		}(p)
	}
	var base int64
	var readErr error
	for {
		b, err := it.in.NextBatch()
		if err != nil {
			readErr = err
			break
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		it.m.addProcessed(int64(n))
		hashes := make([]uint64, n)
		b.HashColumns(it.keyIdx, hashes)
		task := aggTask{b: b, hashes: hashes, base: base}
		base += int64(n)
		for p := range chans {
			chans[p] <- task
		}
	}
	for p := range chans {
		close(chans[p])
	}
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	total := 0
	for _, acc := range it.accs {
		total += len(acc.order)
	}
	merged := make([]*group, 0, total)
	for _, acc := range it.accs {
		merged = append(merged, acc.order...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].firstIdx < merged[j].firstIdx })
	it.m.addHashRows(int64(total))
	it.merged = merged
	it.built = true
	return nil
}

// buildMarkDistinct merges a chain of adjacent MarkDistinct operators into
// one physical operator (the paper's §III.F "processing a chain of
// MarkDistinct operators holistically" optimization): one input pass, one
// output batch per input batch, k distinct sets.
func (ex *executor) buildMarkDistinct(md *logical.MarkDistinct) (BatchIterator, error) {
	// Collect the chain innermost-last.
	var chain []*logical.MarkDistinct
	cur := md
	for {
		chain = append(chain, cur)
		inner, ok := cur.Input.(*logical.MarkDistinct)
		if !ok {
			break
		}
		cur = inner
	}
	base := chain[len(chain)-1].Input
	in, err := ex.build(base)
	if err != nil {
		return nil, err
	}

	// Output layout: base schema, then marks innermost-first (matching the
	// logical schema of the nested operators).
	layout := layoutOf(base)
	baseWidth := len(base.Schema())
	marks := make([]markSpec, len(chain))
	for i := range chain {
		node := chain[len(chain)-1-i] // innermost first
		spec := markSpec{onIdx: make([]int, len(node.On)), seen: make(map[string]bool)}
		for k, c := range node.On {
			idx, ok := layout[c.ID]
			if !ok {
				return nil, errUnbound(c)
			}
			spec.onIdx[k] = idx
		}
		if node.Mask != nil {
			ev, err := newBatchEvaluator(node.Mask, layout)
			if err != nil {
				return nil, err
			}
			spec.mask = ev
		}
		marks[i] = spec
		// Later (outer) masks may reference earlier mark columns.
		layout[node.MarkCol.ID] = baseWidth + i
	}
	return &markDistinctIter{in: in, baseWidth: baseWidth, marks: marks, m: ex.metrics}, nil
}

type markSpec struct {
	onIdx []int
	mask  *batchEvaluator
	seen  map[string]bool
}

// markDistinctIter implements §III.F: pass the input through, appending one
// boolean column per mark that is TRUE on the first occurrence of each
// combination of the On columns among rows satisfying the mask (NULLs
// compare as a single distinct value, matching SQL DISTINCT semantics).
// Each input batch becomes one dense output batch extended with the mark
// columns. Marks are computed column-at-a-time: masks are batch-evaluated
// over the progressively extended batch (a mask may reference earlier mark
// columns, never later ones), and the seen-hash is only consulted for rows
// the mask admits.
type markDistinctIter struct {
	in        BatchIterator
	baseWidth int
	marks     []markSpec
	keyBuf    strings.Builder
	kv        []types.Value
	m         *Metrics
}

func (it *markDistinctIter) NextBatch() (*vec.Batch, error) {
	b, err := it.in.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	n := b.Len()
	it.m.addProcessed(int64(n))
	width := it.baseWidth + len(it.marks)
	ext := make([][]types.Value, width)
	for c := 0; c < it.baseWidth; c++ {
		if b.Sel == nil {
			ext[c] = b.Cols[c][:n]
		} else {
			col := make([]types.Value, n)
			src := b.Cols[c]
			for i, r := range b.Sel {
				col[i] = src[r]
			}
			ext[c] = col
		}
	}
	// Mark columns are allocated up front so the extended batch is always
	// fully materialized; positions for not-yet-computed marks are
	// don't-cares (masks only look backwards).
	for mi := range it.marks {
		ext[it.baseWidth+mi] = make([]types.Value, n)
	}
	out := &vec.Batch{Cols: ext, N: n}

	firsts := 0
	for mi := range it.marks {
		spec := &it.marks[mi]
		var maskVals []types.Value
		if spec.mask != nil {
			maskVals = spec.mask.eval(out)
		}
		if cap(it.kv) < len(spec.onIdx) {
			it.kv = make([]types.Value, len(spec.onIdx))
		}
		kv := it.kv[:len(spec.onIdx)]
		markCol := ext[it.baseWidth+mi]
		for i := 0; i < n; i++ {
			first := false
			if maskVals == nil || maskVals[i].IsTrue() {
				for k, idx := range spec.onIdx {
					kv[k] = ext[idx][i]
				}
				key := encodeKey(&it.keyBuf, kv)
				if !spec.seen[key] {
					spec.seen[key] = true
					first = true
					firsts++
				}
			}
			markCol[i] = types.Bool(first)
		}
	}
	it.m.addHashRows(int64(firsts))
	return out, nil
}

func (ex *executor) buildWindow(w *logical.Window) (BatchIterator, error) {
	in, err := ex.build(w.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(w.Input)
	funcs := make([]windowFunc, len(w.Funcs))
	for i, f := range w.Funcs {
		ca, err := compileAggs([]logical.AggAssign{{Col: f.Col, Agg: f.Agg}}, layout)
		if err != nil {
			return nil, err
		}
		partIdx := make([]int, len(f.PartitionBy))
		for k, c := range f.PartitionBy {
			idx, ok := layout[c.ID]
			if !ok {
				return nil, errUnbound(c)
			}
			partIdx[k] = idx
		}
		funcs[i] = windowFunc{agg: ca, partIdx: partIdx}
	}
	return &windowIter{
		in: in, funcs: funcs, inWidth: len(w.Input.Schema()),
		batchSize: ex.opts.BatchSize, m: ex.metrics,
	}, nil
}

type windowFunc struct {
	agg     *compiledAggs // exactly one aggregate
	partIdx []int
}

// windowIter materializes its input, computes each windowed aggregate per
// partition (unordered full-partition frame), and emits every input row
// extended with its partition's aggregate values. The materialization is
// the cost the paper observes making Q01-class latency gains modest even as
// bytes scanned drop.
type windowIter struct {
	in        BatchIterator
	funcs     []windowFunc
	inWidth   int
	batchSize int
	m         *Metrics

	built  bool
	rows   []Row
	outIdx int
	// per function: row index -> partition state
	states [][]*aggState
	keyBuf strings.Builder
}

func (it *windowIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.consume(); err != nil {
			return nil, err
		}
	}
	if it.outIdx >= len(it.rows) {
		return nil, nil
	}
	width := it.inWidth + len(it.funcs)
	bl := vec.NewBuilder(width, it.batchSize)
	out := make(Row, width)
	for it.outIdx < len(it.rows) && !bl.Full() {
		row := it.rows[it.outIdx]
		copy(out, row)
		for i := range it.funcs {
			out[it.inWidth+i] = it.states[i][it.outIdx].result(it.funcs[i].agg.aggs[0].agg)
		}
		it.outIdx++
		bl.Append(out)
	}
	return bl.Flush(), nil
}

func (it *windowIter) consume() error {
	rows, err := drainRows(it.in, it.inWidth, it.m)
	if err != nil {
		return err
	}
	it.rows = rows
	it.m.addHashRows(int64(len(rows)))
	it.states = make([][]*aggState, len(it.funcs))
	for fi, f := range it.funcs {
		partitions := make(map[string]*aggState)
		rowState := make([]*aggState, len(it.rows))
		kv := make([]types.Value, len(f.partIdx))
		for ri, row := range it.rows {
			for i, idx := range f.partIdx {
				kv[i] = row[idx]
			}
			k := encodeKey(&it.keyBuf, kv)
			st, ok := partitions[k]
			if !ok {
				st = &aggState{}
				partitions[k] = st
			}
			rowState[ri] = st
			f.agg.evalMasks(row)
			a := &f.agg.aggs[0]
			if a.maskIdx >= 0 && !f.agg.results[a.maskIdx] {
				continue
			}
			var v types.Value
			if a.arg != nil {
				v = a.arg.eval(row)
			}
			st.add(a.agg.Fn, v)
		}
		it.states[fi] = rowState
	}
	it.built = true
	return nil
}

func (ex *executor) buildUnion(u *logical.UnionAll) (BatchIterator, error) {
	inputs := make([]BatchIterator, len(u.Inputs))
	remaps := make([][]int, len(u.Inputs))
	for i, in := range u.Inputs {
		it, err := ex.build(in)
		if err != nil {
			return nil, err
		}
		inputs[i] = it
		layout := layoutOf(in)
		remap := make([]int, len(u.InputCols[i]))
		for j, c := range u.InputCols[i] {
			idx, ok := layout[c.ID]
			if !ok {
				return nil, errUnbound(c)
			}
			remap[j] = idx
		}
		remaps[i] = remap
	}
	return &unionIter{inputs: inputs, remaps: remaps, m: ex.metrics}, nil
}

// unionIter concatenates its inputs, remapping each input's columns to the
// union's output order. The remap is a column-pointer shuffle — no values
// are copied.
type unionIter struct {
	inputs []BatchIterator
	remaps [][]int
	cur    int
	m      *Metrics
}

func (it *unionIter) NextBatch() (*vec.Batch, error) {
	for it.cur < len(it.inputs) {
		b, err := it.inputs[it.cur].NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			it.cur++
			continue
		}
		it.m.addProcessed(int64(b.Len()))
		remap := it.remaps[it.cur]
		cols := make([][]types.Value, len(remap))
		for j, idx := range remap {
			cols[j] = b.Cols[idx]
		}
		return &vec.Batch{Cols: cols, Sel: b.Sel, N: b.N}, nil
	}
	return nil, nil
}

func (ex *executor) buildSort(s *logical.Sort) (BatchIterator, error) {
	in, err := ex.build(s.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(s.Input)
	evs := make([]*evaluator, len(s.Keys))
	for i, k := range s.Keys {
		ev, err := newEvaluator(k.E, layout)
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	return &sortIter{
		in: in, evs: evs, keys: s.Keys,
		width: len(s.Input.Schema()), batchSize: ex.opts.BatchSize, m: ex.metrics,
	}, nil
}

// sortIter is a blocking full sort. NULLs order last ascending, first
// descending.
type sortIter struct {
	in        BatchIterator
	evs       []*evaluator
	keys      []logical.SortKey
	width     int
	batchSize int
	m         *Metrics

	built bool
	out   rowsBatcher
}

func (it *sortIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		rows, err := drainRows(it.in, it.width, it.m)
		if err != nil {
			return nil, err
		}
		vals := make([][]types.Value, len(rows))
		for i, row := range rows {
			kv := make([]types.Value, len(it.evs))
			for k, ev := range it.evs {
				kv[k] = ev.eval(row)
			}
			vals[i] = kv
		}
		order := make([]int, len(rows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			va, vb := vals[order[a]], vals[order[b]]
			for k := range it.keys {
				c := compareForSort(va[k], vb[k])
				if c == 0 {
					continue
				}
				if it.keys[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([]Row, len(order))
		for i, o := range order {
			sorted[i] = rows[o]
		}
		it.out = rowsBatcher{rows: sorted, width: it.width, batchSize: it.batchSize}
		it.built = true
	}
	return it.out.NextBatch()
}

// compareForSort orders NULLs after every value.
func compareForSort(a, b types.Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return 1
	case b.Null:
		return -1
	default:
		return types.Compare(a, b)
	}
}
