package exec

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// aggState accumulates one aggregate function's value.
type aggState struct {
	count int64
	sumF  float64
	sumI  int64
	min   types.Value
	max   types.Value
	seen  bool
}

func (s *aggState) add(fn expr.AggFunc, v types.Value) {
	switch fn {
	case expr.AggCountStar:
		s.count++
	case expr.AggCount:
		if !v.Null {
			s.count++
		}
	case expr.AggSum, expr.AggAvg:
		if !v.Null {
			s.count++
			s.seen = true
			if v.Kind == types.KindFloat64 {
				s.sumF += v.F
			} else {
				s.sumI += v.I
				s.sumF += float64(v.I)
			}
		}
	case expr.AggMin:
		if !v.Null && (!s.seen || types.Compare(v, s.min) < 0) {
			s.min = v
			s.seen = true
		}
	case expr.AggMax:
		if !v.Null && (!s.seen || types.Compare(v, s.max) > 0) {
			s.max = v
			s.seen = true
		}
	}
}

func (s *aggState) result(agg expr.AggCall) types.Value {
	switch agg.Fn {
	case expr.AggCountStar, expr.AggCount:
		return types.Int(s.count)
	case expr.AggSum:
		if !s.seen {
			return types.NullOf(agg.ResultType())
		}
		if agg.ResultType() == types.KindInt64 {
			return types.Int(s.sumI)
		}
		return types.Float(s.sumF)
	case expr.AggAvg:
		if s.count == 0 {
			return types.NullOf(types.KindFloat64)
		}
		return types.Float(s.sumF / float64(s.count))
	case expr.AggMin:
		if !s.seen {
			return types.NullOf(agg.ResultType())
		}
		return s.min
	default: // Max
		if !s.seen {
			return types.NullOf(agg.ResultType())
		}
		return s.max
	}
}

// orderSensitive reports whether an aggregate's result can depend on the
// order its inputs are accumulated in. Float sums round differently under
// reassociation, so SUM with a float result and AVG (a float sum divided by
// a count) are sensitive; COUNT, COUNT(*), MIN, MAX and integer-result SUM
// (read from the exact int accumulator) are associative and
// order-insensitive. The parallel scalar-aggregation sink merges partial
// states only for insensitive aggregates and replays sensitive ones'
// argument values serially in morsel order.
func orderSensitive(agg expr.AggCall) bool {
	switch agg.Fn {
	case expr.AggAvg:
		return true
	case expr.AggSum:
		return agg.ResultType() != types.KindInt64
	}
	return false
}

// merge folds a later partial o into s for an order-insensitive aggregate.
// Partials must merge in input (morsel) order; for the insensitive set the
// merged state is then identical to serial accumulation.
func (s *aggState) merge(fn expr.AggFunc, o *aggState) {
	switch fn {
	case expr.AggCountStar, expr.AggCount:
		s.count += o.count
	case expr.AggSum:
		s.count += o.count
		s.sumI += o.sumI
		s.sumF += o.sumF
		s.seen = s.seen || o.seen
	case expr.AggMin:
		if o.seen && (!s.seen || types.Compare(o.min, s.min) < 0) {
			s.min = o.min
			s.seen = true
		}
	case expr.AggMax:
		if o.seen && (!s.seen || types.Compare(o.max, s.max) > 0) {
			s.max = o.max
			s.seen = true
		}
	}
}

// compiledAgg is an aggregate with a bound argument evaluator and an index
// into the shared distinct-mask table (-1 = no mask).
type compiledAgg struct {
	agg     expr.AggCall
	arg     *evaluator
	maskIdx int
}

// compiledAggs shares mask evaluation across aggregates: structurally
// equivalent masks (common when many FILTERed aggregates fuse over one
// input, as in Q09's buckets) are evaluated once per row.
type compiledAggs struct {
	aggs    []compiledAgg
	masks   []*evaluator
	maskAst []expr.Expr
	results []bool // per-row scratch, reused
}

func compileAggs(aggs []logical.AggAssign, layout map[expr.ColumnID]int) (*compiledAggs, error) {
	out := &compiledAggs{aggs: make([]compiledAgg, len(aggs))}
	// Masks dedup by canonical form: `a AND b` and `b AND a` share one
	// evaluator and one slot in the mask family. The canonical AST is what
	// gets compiled — Simplify/normalize preserve three-valued semantics,
	// and the conjunct order it fixes is the order the family factors on.
	maskSlot := make(map[string]int)
	for i, a := range aggs {
		ca := compiledAgg{agg: a.Agg, maskIdx: -1}
		var err error
		if a.Agg.Arg != nil {
			if ca.arg, err = newEvaluator(a.Agg.Arg, layout); err != nil {
				return nil, err
			}
		}
		if a.Agg.Mask != nil && !expr.IsTrueLiteral(a.Agg.Mask) {
			canon := expr.Canonical(a.Agg.Mask)
			if expr.IsTrueLiteral(canon) {
				// The mask folds to TRUE: the aggregate is unmasked.
				out.aggs[i] = ca
				continue
			}
			found, ok := maskSlot[canon.String()]
			if !ok {
				ev, err := newEvaluator(canon, layout)
				if err != nil {
					return nil, err
				}
				out.masks = append(out.masks, ev)
				out.maskAst = append(out.maskAst, canon)
				found = len(out.masks) - 1
				maskSlot[canon.String()] = found
			}
			ca.maskIdx = found
		}
		out.aggs[i] = ca
	}
	out.results = make([]bool, len(out.masks))
	return out, nil
}

// evalMasks evaluates each distinct mask once for the row.
func (ca *compiledAggs) evalMasks(row Row) {
	for i, ev := range ca.masks {
		ca.results[i] = ev.eval(row).IsTrue()
	}
}

func (ex *executor) buildGroupBy(g *logical.GroupBy) (BatchIterator, error) {
	// Scalar aggregation over a fusible chain becomes a pipeline sink: each
	// morsel's workers push their sub-batches into per-worker partial
	// states, merged in fixed morsel order (pipesink.go). This closes the
	// "scalar aggregation stays serial" gap while keeping float sums
	// bit-for-bit identical to the serial order.
	if len(g.Keys) == 0 && !ex.opts.PullExec && ex.opts.Parallelism > 1 {
		if it, ok, err := ex.buildScalarAggSink(g); ok || err != nil {
			return it, err
		}
	}
	in, err := ex.buildConsumed(g.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(g.Input)
	keyIdx := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		idx, ok := layout[k.ID]
		if !ok {
			return nil, errUnbound(k)
		}
		keyIdx[i] = idx
	}
	scalar := len(g.Keys) == 0
	// Keyed aggregations partition across the worker pool: every group lives
	// entirely in the shard its key hashes to, so shards need no
	// coordination and the merged output is byte-identical to the serial
	// order. Scalar aggregation stays serial — one group means one float
	// accumulation order, which parallel partial sums would change.
	spillDir := ex.mempool.SpillDir()
	if !scalar && ex.opts.Parallelism > 1 {
		accs := make([]*groupAccumulator, ex.opts.Parallelism)
		for p := range accs {
			if accs[p], err = newGroupAccumulator(g, layout, keyIdx, ex.tracker, spillDir, ex.opts.NaiveMasks); err != nil {
				return nil, err
			}
			ex.tracker.Register(accs[p])
			ex.onClose(accs[p].closeSpillFiles)
		}
		return &parallelGroupByIter{
			in: in, keyIdx: keyIdx, accs: accs, pool: ex.pool,
			batchSize: ex.opts.BatchSize, m: ex.metrics,
		}, nil
	}
	acc, err := newGroupAccumulator(g, layout, keyIdx, ex.tracker, spillDir, ex.opts.NaiveMasks)
	if err != nil {
		return nil, err
	}
	if !scalar {
		ex.tracker.Register(acc)
		ex.onClose(acc.closeSpillFiles)
	}
	return &groupByIter{
		in: in, acc: acc, scalar: scalar, batchSize: ex.opts.BatchSize, m: ex.metrics,
	}, nil
}

func errUnbound(c *expr.Column) error {
	return &unboundError{col: c}
}

type unboundError struct{ col *expr.Column }

func (e *unboundError) Error() string {
	return "exec: column " + e.col.String() + " not produced by input"
}

type group struct {
	keyVals []types.Value
	states  []aggState
	// firstIdx is the global input row index of the group's first row. The
	// serial accumulator discovers groups in ascending firstIdx order by
	// construction; the parallel merge interleaves shards back into that
	// exact order, which is what keeps parallel output byte-identical.
	firstIdx int64
	// part is the group's spill partition (-1 until spilling activates);
	// reserved marks that the group's bytes are charged to the tracker.
	part     int
	reserved bool
}

// groupAccumulator is one hash-aggregation shard: a group table plus its own
// compiled mask/argument evaluators (batch evaluators own scratch buffers
// and must not be shared across goroutines). The serial aggregation uses a
// single accumulator over every row; the parallel aggregation gives each
// worker one accumulator and routes rows by key hash, so a given group's
// rows always land in the same shard in global input order — per-group
// accumulation (including float sums) is order-identical to serial.
type groupAccumulator struct {
	keyIdx []int
	aggs   *compiledAggs
	// Mask evaluation: the mask-family kernel evaluates the whole distinct
	// mask set in one pass (shared prefix factored out); under
	// Options.NaiveMasks each mask instead gets its own batch evaluator.
	// nMasks is the distinct mask count either way — the spill row-record
	// layout depends on it, not on which engine ran.
	family  *maskFamily
	maskEvs []*batchEvaluator
	nMasks  int
	argEvs  []*batchEvaluator

	groups map[string]*group
	order  []*group // discovery order; ascending firstIdx within one shard
	keyBuf strings.Builder
	kv     []types.Value

	// per-batch scratch
	groupRow []*group
	maskLog  [][]int
	maskSub  []*vec.Batch
	scalarG  *group

	// memctl integration. mu serializes batch consumption against Spill
	// calls routed in by the pool; resident (atomic) is the reserved bytes
	// a spill could free; clock drives the coldest-partition victim pick;
	// sealed stops spills once emission starts. groupsCreated counts every
	// group ever built (consume plus replay), which equals the no-spill
	// group count — the HashRows metric stays config-independent.
	tracker       *memctl.Tracker
	spillDir      string
	mu            sync.Mutex
	resident      int64
	clock         int64
	spillActive   bool
	sealed        bool
	groupsCreated int64
	parts         [numSpillParts]aggSpillPart
	runs          []*storage.SpillFile

	// per-batch spill scratch: rows routed to spilled partitions, their
	// saved keys, per-mask booleans and per-aggregate argument values
	// (copied before the sub-batch evaluations reuse evaluator scratch).
	spillRows  []int
	spillPart  []int
	spillKeys  [][]types.Value
	spillMaskB [][]bool
	spillArgs  [][]types.Value
	rowRec     []types.Value
}

func newGroupAccumulator(g *logical.GroupBy, layout map[expr.ColumnID]int, keyIdx []int, tracker *memctl.Tracker, spillDir string, naiveMasks bool) (*groupAccumulator, error) {
	aggs, err := compileAggs(g.Aggs, layout)
	if err != nil {
		return nil, err
	}
	// The consume loop is vector-driven: masks and aggregate arguments are
	// evaluated once per batch, and only key values are touched per row.
	// The distinct mask set compiles as one family (shared conjuncts run
	// once per batch) unless the naive differential baseline is requested.
	nMasks := len(aggs.maskAst)
	var family *maskFamily
	var maskEvs []*batchEvaluator
	if naiveMasks {
		maskEvs = make([]*batchEvaluator, nMasks)
		for i, ast := range aggs.maskAst {
			if maskEvs[i], err = newBatchEvaluator(ast, layout); err != nil {
				return nil, err
			}
		}
	} else if nMasks > 0 {
		if family, err = newMaskFamily(aggs.maskAst, layout); err != nil {
			return nil, err
		}
	}
	argEvs := make([]*batchEvaluator, len(g.Aggs))
	for i, a := range g.Aggs {
		if argEvs[i], err = newBatchEvaluator(a.Agg.Arg, layout); err != nil {
			return nil, err
		}
	}
	return &groupAccumulator{
		keyIdx: keyIdx, aggs: aggs, family: family, maskEvs: maskEvs, nMasks: nMasks, argEvs: argEvs,
		groups:     make(map[string]*group),
		kv:         make([]types.Value, len(keyIdx)),
		maskLog:    make([][]int, nMasks),
		maskSub:    make([]*vec.Batch, nMasks),
		tracker:    tracker,
		spillDir:   spillDir,
		spillMaskB: make([][]bool, nMasks),
		spillArgs:  make([][]types.Value, len(g.Aggs)),
	}, nil
}

// consumeBatch accumulates one batch into the shard. base+log[i] is the
// global input row index of the batch's i-th active row (log nil means the
// identity mapping, i.e. the batch holds consecutive input rows starting at
// base); it pins each new group's firstIdx for the deterministic merge.
//
// The batch is processed under ga.mu (excluding concurrent Spill calls),
// then new groups' bytes are reserved with no lock held — the pool may pick
// this very accumulator as the spill victim. Groups whose partition spilled
// during that window are already on disk, so their share is refunded.
func (ga *groupAccumulator) consumeBatch(b *vec.Batch, base int64, log []int) error {
	ga.mu.Lock()
	pending, newBytes, err := ga.consumeLocked(b, base, log)
	ga.mu.Unlock()
	if err != nil {
		return err
	}
	if newBytes == 0 {
		return nil
	}
	if err := ga.tracker.Reserve(opGroupBy, newBytes); err != nil {
		return err
	}
	var refund int64
	ga.mu.Lock()
	for _, g := range pending {
		gb := groupMemBytes(g.keyVals, len(ga.aggs.aggs))
		if g.part >= 0 && ga.parts[g.part].spilled {
			refund += gb
		} else {
			g.reserved = true
			atomic.AddInt64(&ga.resident, gb)
		}
	}
	ga.mu.Unlock()
	if refund > 0 {
		ga.tracker.Release(opGroupBy, refund)
	}
	return nil
}

func globalIdx(base int64, i int, log []int) int64 {
	if log != nil {
		return base + int64(log[i])
	}
	return base + int64(i)
}

func (ga *groupAccumulator) consumeLocked(b *vec.Batch, base int64, log []int) ([]*group, int64, error) {
	n := b.Len()
	if n == 0 {
		return nil, 0, nil
	}
	// Group assignment per row (accumulation order below stays row-major
	// per group, so float sums match the row engine bit-for-bit).
	scalar := len(ga.keyIdx) == 0
	if cap(ga.groupRow) < n {
		ga.groupRow = make([]*group, n)
	}
	groupRow := ga.groupRow[:n]
	var pending []*group
	var newBytes int64
	nSpill := 0
	if scalar {
		if ga.scalarG == nil {
			ga.scalarG = &group{states: make([]aggState, len(ga.aggs.aggs)), part: -1}
			ga.groups[""] = ga.scalarG
			ga.order = append(ga.order, ga.scalarG)
			ga.groupsCreated++
		}
	} else {
		ga.clock++
		ga.spillRows = ga.spillRows[:0]
		ga.spillPart = ga.spillPart[:0]
		for i := 0; i < n; i++ {
			for k, idx := range ga.keyIdx {
				ga.kv[k] = b.Value(idx, i)
			}
			key := encodeKey(&ga.keyBuf, ga.kv)
			g, ok := ga.groups[key]
			if !ok {
				part := -1
				if ga.spillActive {
					part = int(vec.HashKey(ga.kv) % numSpillParts)
					if ga.parts[part].spilled {
						// The row's group lives on disk: save its key for
						// the raw-row record and skip accumulation.
						if nSpill < len(ga.spillKeys) {
							ga.spillKeys[nSpill] = append(ga.spillKeys[nSpill][:0], ga.kv...)
						} else {
							ga.spillKeys = append(ga.spillKeys, append([]types.Value{}, ga.kv...))
						}
						ga.spillRows = append(ga.spillRows, i)
						ga.spillPart = append(ga.spillPart, part)
						nSpill++
						ga.parts[part].touch = ga.clock
						groupRow[i] = nil
						continue
					}
				}
				g = &group{
					keyVals:  append([]types.Value{}, ga.kv...),
					states:   make([]aggState, len(ga.aggs.aggs)),
					firstIdx: globalIdx(base, i, log),
					part:     part,
				}
				ga.groups[key] = g
				ga.order = append(ga.order, g)
				ga.groupsCreated++
				if part >= 0 {
					ga.parts[part].groups = append(ga.parts[part].groups, g)
				}
				pending = append(pending, g)
				newBytes += groupMemBytes(g.keyVals, len(ga.aggs.aggs))
			}
			groupRow[i] = g
			if g.part >= 0 {
				ga.parts[g.part].touch = ga.clock
			}
		}
	}

	// Masks become selection vectors, shared by every aggregate that
	// carries the same FILTER expression. The family kernel computes every
	// mask's truth bitmap in one pass; the naive baseline evaluates each
	// mask's value vector independently. Spilled rows additionally save
	// their per-mask booleans for the raw-row record.
	var truths []*vec.Bitmap
	if ga.family != nil {
		truths = ga.family.eval(b)
	}
	for mi := 0; mi < ga.nMasks; mi++ {
		mlog := ga.maskLog[mi][:0]
		var phys []int
		if truths != nil {
			t := truths[mi]
			for i := 0; i < n; i++ {
				if t.True(i) {
					mlog = append(mlog, i)
					phys = append(phys, b.RowIdx(i))
				}
			}
			if nSpill > 0 {
				bm := ga.spillMaskB[mi]
				if cap(bm) < nSpill {
					bm = make([]bool, nSpill)
				}
				bm = bm[:nSpill]
				for j, i := range ga.spillRows {
					bm[j] = t.True(i)
				}
				ga.spillMaskB[mi] = bm
			}
		} else {
			vals := ga.maskEvs[mi].eval(b)
			for i := 0; i < n; i++ {
				if vals[i].IsTrue() {
					mlog = append(mlog, i)
					phys = append(phys, b.RowIdx(i))
				}
			}
			if nSpill > 0 {
				bm := ga.spillMaskB[mi]
				if cap(bm) < nSpill {
					bm = make([]bool, nSpill)
				}
				bm = bm[:nSpill]
				for j, i := range ga.spillRows {
					bm[j] = vals[i].IsTrue()
				}
				ga.spillMaskB[mi] = bm
			}
		}
		ga.maskLog[mi] = mlog
		ga.maskSub[mi] = b.WithSel(phys)
	}

	if nSpill > 0 {
		if err := ga.writeSpilledRows(b, base, log, nSpill); err != nil {
			return pending, newBytes, err
		}
	}

	// Tight accumulation loop per aggregate.
	for ai := range ga.aggs.aggs {
		a := &ga.aggs.aggs[ai]
		sub, mlog := b, []int(nil)
		if a.maskIdx >= 0 {
			sub, mlog = ga.maskSub[a.maskIdx], ga.maskLog[a.maskIdx]
			if len(mlog) == 0 {
				continue
			}
		}
		count := sub.Len()
		var vals []types.Value
		if ga.argEvs[ai] != nil {
			vals = ga.argEvs[ai].eval(sub)
		}
		fn := a.agg.Fn
		if scalar {
			st := &ga.scalarG.states[ai]
			if vals == nil {
				for j := 0; j < count; j++ {
					st.add(fn, types.Value{})
				}
			} else {
				for j := range vals {
					st.add(fn, vals[j])
				}
			}
		} else {
			for j := 0; j < count; j++ {
				li := j
				if mlog != nil {
					li = mlog[j]
				}
				g := groupRow[li]
				if g == nil {
					continue // row spilled to disk this batch
				}
				var v types.Value
				if vals != nil {
					v = vals[j]
				}
				g.states[ai].add(fn, v)
			}
		}
	}
	return pending, newBytes, nil
}

// writeSpilledRows appends this batch's rows bound for spilled partitions
// to their partitions' raw-row files. Argument values are evaluated over
// the full batch and copied out first: the per-aggregate batch evaluators
// reuse scratch buffers, and the accumulation loop below re-evaluates them
// over masked sub-batches.
func (ga *groupAccumulator) writeSpilledRows(b *vec.Batch, base int64, log []int, nSpill int) error {
	for ai, ev := range ga.argEvs {
		if ev == nil {
			continue
		}
		vals := ev.eval(b)
		av := ga.spillArgs[ai]
		if cap(av) < nSpill {
			av = make([]types.Value, nSpill)
		}
		av = av[:nSpill]
		for j, i := range ga.spillRows {
			av[j] = vals[i]
		}
		ga.spillArgs[ai] = av
	}
	recW := ga.rowRecWidth()
	if cap(ga.rowRec) < recW {
		ga.rowRec = make([]types.Value, recW)
	}
	rec := ga.rowRec[:recW]
	kw := len(ga.keyIdx)
	for j := 0; j < nSpill; j++ {
		i := ga.spillRows[j]
		rec[0] = types.Int(globalIdx(base, i, log))
		copy(rec[1:], ga.spillKeys[j])
		off := 1 + kw
		for mi := 0; mi < ga.nMasks; mi++ {
			rec[off+mi] = types.Bool(ga.spillMaskB[mi][j])
		}
		off += ga.nMasks
		for ai := range ga.argEvs {
			if ga.argEvs[ai] == nil {
				rec[off+ai] = types.Value{}
			} else {
				rec[off+ai] = ga.spillArgs[ai][j]
			}
		}
		if err := ga.parts[ga.spillPart[j]].rowsW.Append(rec); err != nil {
			return err
		}
	}
	return nil
}

// groupByIter is a blocking hash aggregation with per-aggregate masks
// (§III.E), run serially through a single accumulator. Group keys are
// compared SQL-DISTINCT-style: NULLs group together.
type groupByIter struct {
	in        BatchIterator
	acc       *groupAccumulator
	scalar    bool
	batchSize int
	m         *Metrics

	built   bool
	emitter *groupEmitter
}

func (it *groupByIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.consume(); err != nil {
			return nil, err
		}
	}
	return it.emitter.NextBatch()
}

func (it *groupByIter) consume() error {
	var base int64
	for {
		b, err := it.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		it.m.addProcessed(int64(n))
		if err := it.acc.consumeBatch(b, base, nil); err != nil {
			return err
		}
		base += int64(n)
	}
	// A scalar aggregate over empty input still produces one default row
	// (uncounted in HashRows, matching the row engine).
	if it.scalar && len(it.acc.order) == 0 {
		it.acc.order = append(it.acc.order, &group{states: make([]aggState, len(it.acc.aggs.aggs)), part: -1})
	}
	// Unregister before finish: replay reservations must never route a
	// spill back into this accumulator's lock.
	it.acc.tracker.Unregister(it.acc)
	stream, err := it.acc.finish()
	if err != nil {
		return err
	}
	it.m.addHashRows(it.acc.groupsCreated)
	if it.acc.family != nil {
		it.m.addMaskPrefixHits(it.acc.family.hits())
	}
	it.emitter = &groupEmitter{
		streams:   []groupStream{stream},
		width:     len(it.acc.keyIdx) + len(it.acc.aggs.aggs),
		batchSize: it.batchSize,
	}
	it.built = true
	return nil
}

// parallelGroupByIter is the partition-wise parallel aggregation: a reader
// pulls input batches in order, hashes each row's group key with the vec
// kernel, and broadcasts the batch to one worker per shard. Worker p
// accumulates exactly the rows whose key hash maps to shard p, in global
// input order, into its own accumulator. Because a group's rows all carry
// the same key hash, each group is built by exactly one shard with the same
// per-group accumulation order as the serial path; the final merge
// interleaves shard streams by first-occurrence index, reproducing serial
// output bytes — whether or not any shard spilled.
type parallelGroupByIter struct {
	in        BatchIterator
	keyIdx    []int
	accs      []*groupAccumulator
	pool      *workerPool
	batchSize int
	m         *Metrics

	built   bool
	emitter *groupEmitter

	errMu    sync.Mutex
	firstErr error
}

func (it *parallelGroupByIter) setErr(err error) {
	it.errMu.Lock()
	if it.firstErr == nil {
		it.firstErr = err
	}
	it.errMu.Unlock()
}

func (it *parallelGroupByIter) getErr() error {
	it.errMu.Lock()
	defer it.errMu.Unlock()
	return it.firstErr
}

// aggTask is one input batch broadcast to every shard worker. hashes[i] is
// the group-key hash of the batch's i-th active row; base is the global
// input row index of the batch's first active row.
type aggTask struct {
	b      *vec.Batch
	hashes []uint64
	base   int64
}

func (it *parallelGroupByIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.consume(); err != nil {
			return nil, err
		}
	}
	return it.emitter.NextBatch()
}

func (it *parallelGroupByIter) consume() error {
	shards := len(it.accs)
	chans := make([]chan aggTask, shards)
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		chans[p] = make(chan aggTask, 2)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			acc := it.accs[p]
			var log, phys []int
			for task := range chans[p] {
				// After a shard error, keep draining the channel without
				// processing so the producer never blocks.
				if it.getErr() != nil {
					continue
				}
				// CPU work runs under a shared pool slot; the slot is never
				// held while waiting on the channel, so stacked parallel
				// operators cannot starve each other into deadlock.
				it.pool.acquire()
				n := task.b.Len()
				log, phys = log[:0], phys[:0]
				for i := 0; i < n; i++ {
					if int(task.hashes[i]%uint64(shards)) == p {
						log = append(log, i)
						phys = append(phys, task.b.RowIdx(i))
					}
				}
				if len(log) > 0 {
					if err := acc.consumeBatch(task.b.WithSel(phys), task.base, log); err != nil {
						it.setErr(err)
					}
				}
				it.pool.release()
			}
		}(p)
	}
	var base int64
	var readErr error
	for {
		if err := it.getErr(); err != nil {
			break
		}
		b, err := it.in.NextBatch()
		if err != nil {
			readErr = err
			break
		}
		if b == nil {
			break
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		it.m.addProcessed(int64(n))
		hashes := make([]uint64, n)
		b.HashColumns(it.keyIdx, hashes)
		task := aggTask{b: b, hashes: hashes, base: base}
		base += int64(n)
		for p := range chans {
			chans[p] <- task
		}
	}
	for p := range chans {
		close(chans[p])
	}
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	if err := it.getErr(); err != nil {
		return err
	}
	// Unregister every shard before any finishes: one shard's replay
	// reservations may spill another, but never a sealed one.
	for _, acc := range it.accs {
		acc.tracker.Unregister(acc)
		acc.seal()
	}
	// If any shard spilled, flush every shard's resident groups to emit
	// runs before the first replay: unregistered shards can no longer be
	// spilled by the pool, so their frozen resident bytes would otherwise
	// squeeze the replay reservations out of the budget.
	anySpill := false
	for _, acc := range it.accs {
		if acc.spilledAny() {
			anySpill = true
			break
		}
	}
	if anySpill {
		for _, acc := range it.accs {
			if err := acc.flushResident(); err != nil {
				return err
			}
		}
	}
	streams := make([]groupStream, len(it.accs))
	var total int64
	for p, acc := range it.accs {
		stream, err := acc.finish()
		if err != nil {
			return err
		}
		streams[p] = stream
		total += acc.groupsCreated
	}
	it.m.addHashRows(total)
	for _, acc := range it.accs {
		if acc.family != nil {
			it.m.addMaskPrefixHits(acc.family.hits())
		}
	}
	it.emitter = &groupEmitter{
		streams:   streams,
		width:     len(it.keyIdx) + len(it.accs[0].aggs.aggs),
		batchSize: it.batchSize,
	}
	it.built = true
	return nil
}

// buildMarkDistinct merges a chain of adjacent MarkDistinct operators into
// one physical operator (the paper's §III.F "processing a chain of
// MarkDistinct operators holistically" optimization): one input pass, one
// output batch per input batch, k distinct sets.
func (ex *executor) buildMarkDistinct(md *logical.MarkDistinct) (BatchIterator, error) {
	// Collect the chain innermost-last.
	var chain []*logical.MarkDistinct
	cur := md
	for {
		chain = append(chain, cur)
		inner, ok := cur.Input.(*logical.MarkDistinct)
		if !ok {
			break
		}
		cur = inner
	}
	base := chain[len(chain)-1].Input
	in, err := ex.build(base)
	if err != nil {
		return nil, err
	}

	// Output layout: base schema, then marks innermost-first (matching the
	// logical schema of the nested operators).
	layout := layoutOf(base)
	baseWidth := len(base.Schema())
	marks := make([]markSpec, len(chain))
	for i := range chain {
		node := chain[len(chain)-1-i] // innermost first
		spec := markSpec{onIdx: make([]int, len(node.On)), seen: make(map[string]bool)}
		for k, c := range node.On {
			idx, ok := layout[c.ID]
			if !ok {
				return nil, errUnbound(c)
			}
			spec.onIdx[k] = idx
		}
		if node.Mask != nil {
			if ex.opts.NaiveMasks {
				ev, err := newBatchEvaluator(node.Mask, layout)
				if err != nil {
					return nil, err
				}
				spec.mask = ev
			} else {
				ev, err := newMaskEvaluator(node.Mask, layout)
				if err != nil {
					return nil, err
				}
				spec.maskBm = ev
			}
		}
		marks[i] = spec
		// Later (outer) masks may reference earlier mark columns.
		layout[node.MarkCol.ID] = baseWidth + i
	}
	return &markDistinctIter{in: in, baseWidth: baseWidth, marks: marks, m: ex.metrics}, nil
}

type markSpec struct {
	onIdx []int
	// mask qualifies rows for distinctness tracking: maskBm is the bitmap
	// path, mask the NaiveMasks value-vector baseline. At most one is set.
	mask   *batchEvaluator
	maskBm *maskEvaluator
	seen   map[string]bool
}

// markDistinctIter implements §III.F: pass the input through, appending one
// boolean column per mark that is TRUE on the first occurrence of each
// combination of the On columns among rows satisfying the mask (NULLs
// compare as a single distinct value, matching SQL DISTINCT semantics).
// Each input batch becomes one dense output batch extended with the mark
// columns. Marks are computed column-at-a-time: masks are batch-evaluated
// over the progressively extended batch (a mask may reference earlier mark
// columns, never later ones), and the seen-hash is only consulted for rows
// the mask admits.
type markDistinctIter struct {
	in        BatchIterator
	baseWidth int
	marks     []markSpec
	keyBuf    strings.Builder
	kv        []types.Value
	m         *Metrics
}

func (it *markDistinctIter) NextBatch() (*vec.Batch, error) {
	b, err := it.in.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	n := b.Len()
	it.m.addProcessed(int64(n))
	width := it.baseWidth + len(it.marks)
	ext := make([][]types.Value, width)
	for c := 0; c < it.baseWidth; c++ {
		if b.Sel == nil {
			ext[c] = b.Cols[c][:n]
		} else {
			col := make([]types.Value, n)
			src := b.Cols[c]
			for i, r := range b.Sel {
				col[i] = src[r]
			}
			ext[c] = col
		}
	}
	// Mark columns are allocated up front so the extended batch is always
	// fully materialized; positions for not-yet-computed marks are
	// don't-cares (masks only look backwards).
	for mi := range it.marks {
		ext[it.baseWidth+mi] = make([]types.Value, n)
	}
	out := &vec.Batch{Cols: ext, N: n}

	firsts := 0
	for mi := range it.marks {
		spec := &it.marks[mi]
		var maskVals []types.Value
		var maskBits *vec.Bitmap
		if spec.mask != nil {
			maskVals = spec.mask.eval(out)
		} else if spec.maskBm != nil {
			maskBits = spec.maskBm.eval(out)
		}
		if cap(it.kv) < len(spec.onIdx) {
			it.kv = make([]types.Value, len(spec.onIdx))
		}
		kv := it.kv[:len(spec.onIdx)]
		markCol := ext[it.baseWidth+mi]
		for i := 0; i < n; i++ {
			first := false
			admit := true
			if maskVals != nil {
				admit = maskVals[i].IsTrue()
			} else if maskBits != nil {
				admit = maskBits.True(i)
			}
			if admit {
				for k, idx := range spec.onIdx {
					kv[k] = ext[idx][i]
				}
				key := encodeKey(&it.keyBuf, kv)
				if !spec.seen[key] {
					spec.seen[key] = true
					first = true
					firsts++
				}
			}
			markCol[i] = types.Bool(first)
		}
	}
	it.m.addHashRows(int64(firsts))
	return out, nil
}

func (ex *executor) buildWindow(w *logical.Window) (BatchIterator, error) {
	in, err := ex.buildConsumed(w.Input)
	if err != nil {
		return nil, err
	}
	layout := layoutOf(w.Input)
	funcs := make([]windowFunc, len(w.Funcs))
	for i, f := range w.Funcs {
		ca, err := compileAggs([]logical.AggAssign{{Col: f.Col, Agg: f.Agg}}, layout)
		if err != nil {
			return nil, err
		}
		partIdx := make([]int, len(f.PartitionBy))
		for k, c := range f.PartitionBy {
			idx, ok := layout[c.ID]
			if !ok {
				return nil, errUnbound(c)
			}
			partIdx[k] = idx
		}
		funcs[i] = windowFunc{agg: ca, partIdx: partIdx}
	}
	return &windowIter{
		in: in, funcs: funcs, inWidth: len(w.Input.Schema()),
		batchSize: ex.opts.BatchSize, m: ex.metrics, tracker: ex.tracker,
	}, nil
}

type windowFunc struct {
	agg     *compiledAggs // exactly one aggregate
	partIdx []int
}

// windowIter materializes its input, computes each windowed aggregate per
// partition (unordered full-partition frame), and emits every input row
// extended with its partition's aggregate values. The materialization is
// the cost the paper observes making Q01-class latency gains modest even as
// bytes scanned drop.
type windowIter struct {
	in        BatchIterator
	funcs     []windowFunc
	inWidth   int
	batchSize int
	m         *Metrics
	tracker   *memctl.Tracker

	built  bool
	rows   []Row
	outIdx int
	// per function: row index -> partition state
	states [][]*aggState
	keyBuf strings.Builder
}

func (it *windowIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.consume(); err != nil {
			return nil, err
		}
	}
	if it.outIdx >= len(it.rows) {
		return nil, nil
	}
	width := it.inWidth + len(it.funcs)
	bl := vec.NewBuilder(width, it.batchSize)
	out := make(Row, width)
	for it.outIdx < len(it.rows) && !bl.Full() {
		row := it.rows[it.outIdx]
		copy(out, row)
		for i := range it.funcs {
			out[it.inWidth+i] = it.states[i][it.outIdx].result(it.funcs[i].agg.aggs[0].agg)
		}
		it.outIdx++
		bl.Append(out)
	}
	return bl.Flush(), nil
}

func (it *windowIter) consume() error {
	// The window's materialized input is not spillable; under a tight
	// budget the reservation fails with ErrMemoryExceeded (held until the
	// query's tracker closes).
	rows, _, err := drainRowsTracked(it.in, it.inWidth, it.m, it.tracker, opWindow)
	if err != nil {
		return err
	}
	it.rows = rows
	it.m.addHashRows(int64(len(rows)))
	it.states = make([][]*aggState, len(it.funcs))
	for fi, f := range it.funcs {
		partitions := make(map[string]*aggState)
		rowState := make([]*aggState, len(it.rows))
		kv := make([]types.Value, len(f.partIdx))
		for ri, row := range it.rows {
			for i, idx := range f.partIdx {
				kv[i] = row[idx]
			}
			k := encodeKey(&it.keyBuf, kv)
			st, ok := partitions[k]
			if !ok {
				st = &aggState{}
				partitions[k] = st
			}
			rowState[ri] = st
			f.agg.evalMasks(row)
			a := &f.agg.aggs[0]
			if a.maskIdx >= 0 && !f.agg.results[a.maskIdx] {
				continue
			}
			var v types.Value
			if a.arg != nil {
				v = a.arg.eval(row)
			}
			st.add(a.agg.Fn, v)
		}
		it.states[fi] = rowState
	}
	it.built = true
	return nil
}

func (ex *executor) buildUnion(u *logical.UnionAll) (BatchIterator, error) {
	inputs := make([]BatchIterator, len(u.Inputs))
	remaps := make([][]int, len(u.Inputs))
	for i, in := range u.Inputs {
		it, err := ex.build(in)
		if err != nil {
			return nil, err
		}
		inputs[i] = it
		layout := layoutOf(in)
		remap := make([]int, len(u.InputCols[i]))
		for j, c := range u.InputCols[i] {
			idx, ok := layout[c.ID]
			if !ok {
				return nil, errUnbound(c)
			}
			remap[j] = idx
		}
		remaps[i] = remap
	}
	return &unionIter{inputs: inputs, remaps: remaps, m: ex.metrics}, nil
}

// unionIter concatenates its inputs, remapping each input's columns to the
// union's output order. The remap is a column-pointer shuffle — no values
// are copied.
type unionIter struct {
	inputs []BatchIterator
	remaps [][]int
	cur    int
	m      *Metrics
}

func (it *unionIter) NextBatch() (*vec.Batch, error) {
	for it.cur < len(it.inputs) {
		b, err := it.inputs[it.cur].NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			it.cur++
			continue
		}
		it.m.addProcessed(int64(b.Len()))
		remap := it.remaps[it.cur]
		cols := make([][]types.Value, len(remap))
		for j, idx := range remap {
			cols[j] = b.Cols[idx]
		}
		return &vec.Batch{Cols: cols, Sel: b.Sel, N: b.N}, nil
	}
	return nil, nil
}
