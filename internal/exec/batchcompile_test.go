package exec

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// boolBatch builds a two-boolean-column batch holding every (l, r) pair of
// the given tri-state domain, in row-major order.
func boolBatch(domain []types.Value) (*vec.Batch, []types.Value, []types.Value) {
	var lcol, rcol []types.Value
	for _, l := range domain {
		for _, r := range domain {
			lcol = append(lcol, l)
			rcol = append(rcol, r)
		}
	}
	return vec.NewDense([][]types.Value{lcol, rcol}, len(lcol)), lcol, rcol
}

// TestBatchBooleanKleeneTruthTables pins the AND/OR three-valued truth
// tables of the batch compiler, NULL rows included, for both the value
// path (compileBatchExpr) and the bitmap path (compileBitmapExpr).
func TestBatchBooleanKleeneTruthTables(t *testing.T) {
	l := expr.NewColumn("l", types.KindBool)
	r := expr.NewColumn("r", types.KindBool)
	layout := map[expr.ColumnID]int{l.ID: 0, r.ID: 1}
	domain := []types.Value{types.Bool(true), types.Bool(false), types.NullOf(types.KindBool)}
	b, lcol, rcol := boolBatch(domain)

	ref := func(op expr.BinOp, lv, rv types.Value) types.Value {
		if op == expr.OpAnd {
			return kleeneAnd(lv, rv)
		}
		return kleeneOr(lv, rv)
	}
	// kleeneAnd/kleeneOr are themselves pinned here against the SQL truth
	// tables, so the reference above is not circular.
	if got := kleeneAnd(types.NullOf(types.KindBool), types.Bool(false)); !got.Equal(types.Bool(false)) {
		t.Fatalf("NULL AND FALSE = %v, want FALSE", got)
	}
	if got := kleeneAnd(types.NullOf(types.KindBool), types.Bool(true)); !got.Null {
		t.Fatalf("NULL AND TRUE = %v, want NULL", got)
	}
	if got := kleeneOr(types.NullOf(types.KindBool), types.Bool(true)); !got.Equal(types.Bool(true)) {
		t.Fatalf("NULL OR TRUE = %v, want TRUE", got)
	}
	if got := kleeneOr(types.NullOf(types.KindBool), types.Bool(false)); !got.Null {
		t.Fatalf("NULL OR FALSE = %v, want NULL", got)
	}

	for _, op := range []expr.BinOp{expr.OpAnd, expr.OpOr} {
		e := expr.NewBinary(op, expr.Ref(l), expr.Ref(r))
		bfn, err := compileBatchExpr(e, layout)
		if err != nil {
			t.Fatal(err)
		}
		mfn, err := compileBitmapExpr(e, layout)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]types.Value, b.Len())
		bfn(b, out)
		var bm vec.Bitmap
		mfn(b, &bm)
		for i := range out {
			want := ref(op, lcol[i], rcol[i])
			if !out[i].Equal(want) {
				t.Errorf("%s row %d (%v,%v): value path %v want %v", e, i, lcol[i], rcol[i], out[i], want)
			}
			if bm.True(i) != want.IsTrue() || bm.Null(i) != want.Null {
				t.Errorf("%s row %d (%v,%v): bitmap (t=%v,n=%v) want %v", e, i, lcol[i], rcol[i], bm.True(i), bm.Null(i), want)
			}
		}
	}
}

// TestBatchRowFallbackUnderSelection drives a row-fallback node (CASE)
// through the batch compiler with a non-nil selection vector: gathered
// rows must come from the selected physical positions, in selection order.
func TestBatchRowFallbackUnderSelection(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	layout := map[expr.ColumnID]int{a.ID: 0}
	e := &expr.Case{Whens: []expr.When{
		{Cond: expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(10))), Then: expr.Lit(types.String("big"))},
	}, Else: expr.Lit(types.String("small"))}
	fn, err := compileBatchExpr(e, layout)
	if err != nil {
		t.Fatal(err)
	}
	col := []types.Value{types.Int(1), types.Int(20), types.Int(3), types.Int(40), types.Int(5)}
	b := vec.NewDense([][]types.Value{col}, 5).WithSel([]int{3, 0, 1})
	out := make([]types.Value, b.Len())
	fn(b, out)
	want := []string{"big", "small", "big"} // rows 3, 0, 1
	for i, w := range want {
		if out[i].S != w {
			t.Errorf("sel row %d: got %q want %q", i, out[i].S, w)
		}
	}
}

// TestBatchCoalesceEarlyExit pins COALESCE semantics around the all-rows-
// decided early exit: a fully non-NULL first argument wins everywhere,
// later arguments fill only NULL positions, and rows NULL in every
// argument stay NULL.
func TestBatchCoalesceEarlyExit(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	c := expr.NewColumn("c", types.KindInt64)
	layout := map[expr.ColumnID]int{a.ID: 0, c.ID: 1}
	null := types.NullOf(types.KindInt64)

	acol := []types.Value{types.Int(1), null, types.Int(3), null}
	ccol := []types.Value{types.Int(-1), types.Int(-2), null, null}
	b := vec.NewDense([][]types.Value{acol, ccol}, 4)

	cases := []struct {
		e    expr.Expr
		want []types.Value
	}{
		// NULL-bearing first argument: the second fills holes where it can.
		{&expr.Coalesce{Args: []expr.Expr{expr.Ref(c), expr.Ref(a)}},
			[]types.Value{types.Int(-1), types.Int(-2), types.Int(3), null}},
		// Literal dense first argument decides every row immediately.
		{&expr.Coalesce{Args: []expr.Expr{expr.Lit(types.Int(7)), expr.Ref(a)}},
			[]types.Value{types.Int(7), types.Int(7), types.Int(7), types.Int(7)}},
		// NULL-bearing first argument: later args fill the holes only.
		{&expr.Coalesce{Args: []expr.Expr{expr.Ref(a), expr.Ref(c), expr.Lit(types.Int(9))}},
			[]types.Value{types.Int(1), types.Int(-2), types.Int(3), types.Int(9)}},
		// NULL in every argument stays NULL.
		{&expr.Coalesce{Args: []expr.Expr{expr.Ref(a), expr.Ref(c)}},
			[]types.Value{types.Int(1), types.Int(-2), types.Int(3), null}},
	}
	for _, tc := range cases {
		fn, err := compileBatchExpr(tc.e, layout)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]types.Value, 4)
		fn(b, out)
		for i := range out {
			if !out[i].Equal(tc.want[i]) {
				t.Errorf("%s row %d: got %v want %v", tc.e, i, out[i], tc.want[i])
			}
		}
	}
}

// TestCmpColColNulls exercises the column-vs-column comparison fast path
// with NULLs on either side and in both operand orders, dense and under a
// selection vector, for both the value and bitmap compilers.
func TestCmpColColNulls(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	c := expr.NewColumn("c", types.KindInt64)
	layout := map[expr.ColumnID]int{a.ID: 0, c.ID: 1}
	null := types.NullOf(types.KindInt64)

	acol := []types.Value{types.Int(1), null, types.Int(3), null, types.Int(5)}
	ccol := []types.Value{types.Int(2), types.Int(2), null, null, types.Int(5)}
	batches := []*vec.Batch{
		vec.NewDense([][]types.Value{acol, ccol}, 5),
		vec.NewDense([][]types.Value{acol, ccol}, 5).WithSel([]int{4, 1, 3}),
	}
	exprs := []expr.Expr{
		expr.NewBinary(expr.OpLt, expr.Ref(a), expr.Ref(c)),
		expr.NewBinary(expr.OpLt, expr.Ref(c), expr.Ref(a)), // flipped order
		expr.NewBinary(expr.OpEq, expr.Ref(a), expr.Ref(c)),
		expr.NewBinary(expr.OpGe, expr.Ref(c), expr.Ref(a)),
	}
	for _, e := range exprs {
		if compileCmpColCol(e.(*expr.Binary), layout) == nil {
			t.Fatalf("%s: col-col fast path did not engage", e)
		}
		bfn, err := compileBatchExpr(e, layout)
		if err != nil {
			t.Fatal(err)
		}
		mfn, err := compileBitmapExpr(e, layout)
		if err != nil {
			t.Fatal(err)
		}
		rfn, err := compileExpr(e, layout)
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range batches {
			out := make([]types.Value, b.Len())
			bfn(b, out)
			var bm vec.Bitmap
			mfn(b, &bm)
			row := make(Row, b.Width())
			for i := 0; i < b.Len(); i++ {
				b.Gather(i, row)
				want := rfn(row)
				if !out[i].Equal(want) {
					t.Errorf("%s batch %d row %d: batch=%v row=%v", e, bi, i, out[i], want)
				}
				if bm.True(i) != want.IsTrue() || bm.Null(i) != want.Null {
					t.Errorf("%s batch %d row %d: bitmap (t=%v,n=%v) want %v", e, bi, i, bm.True(i), bm.Null(i), want)
				}
			}
		}
	}
}
