package exec

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
	"repro/internal/vec"
)

// TestBatchCompileMatchesRowCompile drives the batch compiler and the row
// compiler over the same batches — dense and with selection vectors — and
// requires value-for-value agreement for every expression class, including
// the row-fallback nodes (CASE, IN, LIKE).
func TestBatchCompileMatchesRowCompile(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	s := expr.NewColumn("s", types.KindString)
	b := expr.NewColumn("b", types.KindBool)
	layout := map[expr.ColumnID]int{a.ID: 0, s.ID: 1, b.ID: 2}

	exprs := []expr.Expr{
		expr.Lit(types.Int(42)),
		expr.Ref(a),
		expr.NewBinary(expr.OpAdd, expr.Ref(a), expr.Lit(types.Int(5))),
		expr.NewBinary(expr.OpSub, expr.Ref(a), expr.Lit(types.Float(0.5))),
		expr.NewBinary(expr.OpMul, expr.Ref(a), expr.Ref(a)),
		expr.NewBinary(expr.OpDiv, expr.Ref(a), expr.Lit(types.Int(0))),
		expr.NewBinary(expr.OpDiv, expr.Ref(a), expr.Lit(types.Int(4))),
		expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(3))),
		expr.NewBinary(expr.OpLe, expr.Ref(a), expr.Lit(types.Int(3))),
		expr.NewBinary(expr.OpEq, expr.Ref(s), expr.Lit(types.String("x"))),
		expr.NewBinary(expr.OpNe, expr.Ref(s), expr.Lit(types.String("x"))),
		expr.NewBinary(expr.OpAnd, expr.Ref(b), expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(0)))),
		expr.NewBinary(expr.OpOr, expr.Ref(b), &expr.IsNull{E: expr.Ref(a)}),
		&expr.Not{E: expr.Ref(b)},
		&expr.IsNull{E: expr.Ref(a)},
		&expr.IsNull{E: expr.Ref(a), Neg: true},
		&expr.Coalesce{Args: []expr.Expr{expr.Ref(a), expr.Lit(types.Int(9))}},
		&expr.Coalesce{Args: []expr.Expr{expr.Lit(types.NullOf(types.KindInt64)), expr.Ref(a), expr.Lit(types.Int(9))}},
		&expr.InList{E: expr.Ref(a), List: []expr.Expr{expr.Lit(types.Int(1)), expr.Lit(types.Int(7))}},
		&expr.Like{E: expr.Ref(s), Pattern: "he%o"},
		&expr.Case{Whens: []expr.When{
			{Cond: expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(0))), Then: expr.Lit(types.String("pos"))},
		}, Else: expr.Lit(types.String("neg"))},
	}

	cols := [][]types.Value{
		{types.Int(7), types.Int(-2), types.NullOf(types.KindInt64), types.Int(1), types.Int(0)},
		{types.String("hello"), types.String("x"), types.NullOf(types.KindString), types.String(""), types.String("heo")},
		{types.Bool(true), types.Bool(false), types.NullOf(types.KindBool), types.Bool(true), types.Bool(false)},
	}
	batches := []*vec.Batch{
		vec.NewDense(cols, 5),
		vec.NewDense(cols, 5).WithSel([]int{0, 2, 4}),
		vec.NewDense(cols, 5).WithSel([]int{3}),
	}

	for _, e := range exprs {
		bfn, err := compileBatchExpr(e, layout)
		if err != nil {
			t.Fatalf("batch-compile %s: %v", e, err)
		}
		rfn, err := compileExpr(e, layout)
		if err != nil {
			t.Fatalf("row-compile %s: %v", e, err)
		}
		for bi, batch := range batches {
			out := make([]types.Value, batch.Len())
			bfn(batch, out)
			row := make(Row, batch.Width())
			for i := 0; i < batch.Len(); i++ {
				batch.Gather(i, row)
				want := rfn(row)
				if !out[i].Equal(want) {
					t.Errorf("%s batch %d row %d: batch=%v row=%v", e, bi, i, out[i], want)
				}
			}
		}
	}
}

func TestBatchCompileUnboundColumn(t *testing.T) {
	a := expr.NewColumn("a", types.KindInt64)
	if _, err := compileBatchExpr(expr.Ref(a), map[expr.ColumnID]int{}); err == nil {
		t.Error("unbound column must fail at compile time")
	}
}

// TestExecOptionEquivalence runs representative plans under row-at-a-time
// (BatchSize 1, serial) and vectorized-parallel options and requires
// byte-identical rows in identical order, plus identical metric totals.
func TestExecOptionEquivalence(t *testing.T) {
	st := fixture(t)
	sales := scanOf(t, st, "sales")
	item := scanOf(t, st, "item")
	sCols, iCols := sales.Cols, item.Cols

	plans := map[string]logical.Operator{
		"scan": sales,
		"filter-project": &logical.Project{
			Input: &logical.Filter{
				Input: sales,
				Cond:  expr.NewBinary(expr.OpGt, expr.Ref(sCols[2]), expr.Lit(types.Int(3))),
			},
			Cols: []logical.Assignment{
				{Col: expr.NewColumn("q2", types.KindInt64),
					E: expr.NewBinary(expr.OpMul, expr.Ref(sCols[2]), expr.Lit(types.Int(2)))},
			},
		},
		"join-groupby": &logical.GroupBy{
			Input: &logical.Join{
				Kind: logical.InnerJoin, Left: sales, Right: item,
				Cond: expr.NewBinary(expr.OpEq, expr.Ref(sCols[0]), expr.Ref(iCols[0])),
			},
			Keys: []*expr.Column{iCols[1]},
			Aggs: []logical.AggAssign{
				{Col: expr.NewColumn("total", types.KindInt64),
					Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(sCols[2])}},
			},
		},
		"sort-limit": &logical.Limit{
			Input: &logical.Sort{
				Input: sales,
				Keys:  []logical.SortKey{{E: expr.Ref(sCols[2]), Desc: true}},
			},
			N: 5,
		},
	}

	configs := []Options{
		{Parallelism: 1, BatchSize: 1},
		{Parallelism: 1, BatchSize: 3},
		{Parallelism: 4, BatchSize: 2},
		{Parallelism: 0, BatchSize: 0}, // defaults
	}
	for name, plan := range plans {
		if err := logical.Validate(plan); err != nil {
			t.Fatalf("%s: invalid plan: %v", name, err)
		}
		var want *Result
		for _, opts := range configs {
			res, err := RunWith(plan, st, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if want == nil {
				want = res
				continue
			}
			if got, exp := rowsText(res.Rows), rowsText(want.Rows); got != exp {
				t.Errorf("%s %+v: rows differ\ngot:\n%s\nwant:\n%s", name, opts, got, exp)
			}
			if res.Metrics.RowsProcessed != want.Metrics.RowsProcessed {
				t.Errorf("%s %+v: RowsProcessed=%d want %d",
					name, opts, res.Metrics.RowsProcessed, want.Metrics.RowsProcessed)
			}
			if res.Metrics.Storage.BytesScanned != want.Metrics.Storage.BytesScanned {
				t.Errorf("%s %+v: BytesScanned=%d want %d",
					name, opts, res.Metrics.Storage.BytesScanned, want.Metrics.Storage.BytesScanned)
			}
		}
	}
}

// TestParallelScanEarlyExit makes sure a LIMIT above a parallel scan stops
// cleanly: correct prefix, no hangs, workers released via the run's closers
// (the race detector on CI would flag leaked workers touching metrics).
func TestParallelScanEarlyExit(t *testing.T) {
	st := fixture(t)
	sales := scanOf(t, st, "sales")
	plan := &logical.Limit{Input: sales, N: 2}
	res, err := RunWith(plan, st, Options{Parallelism: 4, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	serial, err := RunWith(plan, st, Options{Parallelism: 1, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rowsText(res.Rows) != rowsText(serial.Rows) {
		t.Errorf("parallel limit prefix differs from serial")
	}
}

func rowsText(rows []Row) string {
	var b strings.Builder
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
