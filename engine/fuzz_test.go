package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tpcds"
)

// This file generates randomized SQL around the paper's patterns — a random
// common expression reused by UNION ALL branches, self joins on grouping
// keys, scalar-subquery comparisons — and asserts that baseline, fused, and
// spooled engines agree on every query. It is the SQL-level analogue of the
// plan-level Fuse contract property test.

// randomCommonCTE builds a random aggregation over a fact table.
func randomCommonCTE(rng *rand.Rand) (cte string, keyCol string, aggCol string) {
	tables := []struct {
		from    string
		key     string
		measure string
		filter  string
	}{
		{"store_sales", "ss_store_sk", "ss_sales_price", "ss_quantity"},
		{"store_sales", "ss_item_sk", "ss_net_profit", "ss_quantity"},
		{"catalog_sales", "cs_bill_customer_sk", "cs_list_price", "cs_quantity"},
		{"web_sales", "ws_item_sk", "ws_list_price", "ws_quantity"},
		{"store_returns", "sr_store_sk", "sr_return_amt", "sr_customer_sk"},
	}
	tb := tables[rng.Intn(len(tables))]
	fn := []string{"SUM", "AVG", "MIN", "MAX"}[rng.Intn(4)]
	lo := rng.Intn(50)
	hi := lo + 10 + rng.Intn(40)
	cte = fmt.Sprintf(
		"SELECT %s AS k, %s(%s) AS v FROM %s WHERE %s BETWEEN %d AND %d GROUP BY %s",
		tb.key, fn, tb.measure, tb.from, tb.filter, lo, hi, tb.key)
	return cte, "k", "v"
}

// randomQuery wraps a random common expression in one of the paper's reuse
// patterns.
func randomQuery(rng *rand.Rand) string {
	cte, key, val := randomCommonCTE(rng)
	switch rng.Intn(4) {
	case 0: // UNION ALL over the same CTE with different predicates (§IV.D)
		t1 := 10 + rng.Intn(90)
		t2 := 10 + rng.Intn(90)
		return fmt.Sprintf(`WITH c AS (%s)
			SELECT %s FROM c WHERE %s > %d
			UNION ALL
			SELECT %s FROM c WHERE %s <= %d`,
			cte, key, val, t1, key, val, t2)
	case 1: // self join on the grouping key (§IV.B)
		return fmt.Sprintf(`WITH c AS (%s)
			SELECT a.%s, a.%s, b.%s FROM c a, c b
			WHERE a.%s = b.%s AND a.%s > b.%s * 0.5
			ORDER BY a.%s LIMIT 50`,
			cte, key, val, val, key, key, val, val, key)
	case 2: // aggregate joined back through a correlated subquery (§IV.A)
		return fmt.Sprintf(`WITH c AS (%s)
			SELECT c1.%s FROM c c1
			WHERE c1.%s > (SELECT AVG(%s) FROM c c2 WHERE c2.%s = c1.%s)
			ORDER BY c1.%s LIMIT 50`,
			cte, key, val, val, key, key, key)
	default: // scalar aggregates over overlapping subsets (§V.B)
		lo1, lo2 := rng.Intn(40), rng.Intn(40)
		return fmt.Sprintf(`SELECT
			(SELECT COUNT(*) FROM store_sales WHERE ss_quantity > %d) AS a,
			(SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity > %d) AS b,
			(SELECT MAX(ss_list_price) FROM store_sales WHERE ss_quantity > %d) AS c
			FROM reason WHERE r_reason_sk = 1`,
			lo1, lo2, lo1)
	}
}

func TestRandomizedThreeWayEquivalence(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.03, 99)
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name string
		eng  *Engine
	}{
		{"baseline", OpenWithStore(st, Config{})},
		{"fused", OpenWithStore(st, Config{EnableFusion: true})},
		{"spooled", OpenWithStore(st, Config{EnableSpooling: true})},
		{"fused+spooled", OpenWithStore(st, Config{EnableFusion: true, EnableSpooling: true})},
	}

	rng := rand.New(rand.NewSource(20220513)) // the paper's ICDE publication week
	fusedChanged := 0
	for i := 0; i < 60; i++ {
		query := randomQuery(rng)
		var want []string
		for _, m := range modes {
			res, err := m.eng.Query(query)
			if err != nil {
				t.Fatalf("query %d (%s) failed: %v\n%s", i, m.name, err, query)
			}
			got := canonicalRows(res.Rows)
			if m.name == "baseline" {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("query %d: %s returned %d rows, baseline %d\n%s\nplan:\n%s",
					i, m.name, len(got), len(want), query, res.Plan)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("query %d: %s row %d differs\n  baseline: %s\n  %s: %s\n%s\nplan:\n%s",
						i, m.name, j, want[j], m.name, got[j], query, res.Plan)
				}
			}
			if m.name == "fused" && len(res.RulesFired) > 0 {
				fusedChanged++
			}
		}
	}
	if fusedChanged < 30 {
		t.Errorf("fusion only changed %d/60 random queries; generator drifted", fusedChanged)
	}
	t.Logf("3-way equivalence on 60 random queries; fusion fired on %d", fusedChanged)
}
