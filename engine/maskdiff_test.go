package engine

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/testgen"
	"repro/internal/tpcds"
)

// This file is the mask-kernel differential harness: the same query corpora
// as difffuzz_test.go run with the mask-family compiler on (the default) and
// compared against the NaiveMasks baseline, which evaluates every filter
// predicate and aggregation FILTER mask as an independent per-expression
// value vector. Shared-prefix factoring, progressive conjunct evaluation and
// bitmap intermediates must be unobservable: rows byte-identical in
// identical order, BytesScanned and RowsProcessed exact — only
// Metrics.MaskPrefixHits may change.

// maskConfigs are the family-side execution configurations compared against
// the serial naive reference: degenerate row-at-a-time (family kernels with
// one-row batches), full parallel, adversarial odd shards, and parallel
// under a memory limit so spilled aggregation state replays per-mask
// booleans from disk instead of re-evaluating masks.
var maskConfigs = []struct {
	name        string
	parallelism int
	batchSize   int
	spill       bool
}{
	{"p1b1", 1, 1, false},
	{"p8b1024", 8, 1024, false},
	{"p3b7", 3, 7, false},
	{"p4b256spill", 4, 256, true},
}

func runMaskDifferential(t *testing.T, seed int64) {
	st := diffTestStore(t)
	limit := spillTestLimit(defaultSpillTestLimit)
	query := testgen.New(seed).Query()
	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, NaiveMasks: true})
		refRes, err := ref.Query(query)
		if err != nil {
			t.Fatalf("seed %d naive reference (fusion=%v) failed: %v\n%s", seed, fusion, err, query)
		}
		if refRes.Metrics.MaskPrefixHits != 0 {
			t.Fatalf("seed %d (fusion=%v): naive run counted %d prefix hits", seed, fusion, refRes.Metrics.MaskPrefixHits)
		}
		want := exactRows(refRes.Rows)
		for _, cfg := range maskConfigs {
			c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize}
			var spillDir string
			if cfg.spill {
				spillDir = t.TempDir()
				c.MemoryLimitBytes = limit
				c.SpillDir = spillDir
			}
			res, err := OpenWithStore(st, c).Query(query)
			if err != nil {
				t.Fatalf("seed %d %s (fusion=%v) failed: %v\n%s", seed, cfg.name, fusion, err, query)
			}
			if got := exactRows(res.Rows); got != want {
				t.Fatalf("seed %d %s (fusion=%v): family rows differ from naive\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
					seed, cfg.name, fusion, query, got, want, res.Plan)
			}
			if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
				t.Fatalf("seed %d %s (fusion=%v): BytesScanned %d != %d\n%s", seed, cfg.name, fusion, got, want, query)
			}
			if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
				t.Fatalf("seed %d %s (fusion=%v): RowsProcessed %d != %d\n%s", seed, cfg.name, fusion, got, want, query)
			}
			if cfg.spill {
				if res.Metrics.PeakMemoryBytes > limit {
					t.Fatalf("seed %d %s (fusion=%v): peak tracked memory %d exceeds limit %d\n%s",
						seed, cfg.name, fusion, res.Metrics.PeakMemoryBytes, limit, query)
				}
				if ents, err := os.ReadDir(spillDir); err != nil {
					t.Fatal(err)
				} else if len(ents) != 0 {
					t.Fatalf("seed %d %s (fusion=%v): %d spill files leaked", seed, cfg.name, fusion, len(ents))
				}
			}
		}
	}
}

// TestDifferentialMaskFamily is the bounded mask-kernel corpus wired into
// plain `go test`: a fixed testgen seed range, every seed compared family
// versus naive across the full configuration matrix above.
func TestDifferentialMaskFamily(t *testing.T) {
	const corpus = 60
	for seed := int64(0); seed < corpus; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			runMaskDifferential(t, seed)
		})
	}
}

// TestDifferentialMaskFamilyTPCDS runs the full TPC-DS workload family
// versus naive. Fused many-mask queries (Q09/Q28/Q88-class) are where
// shared-prefix factoring actually engages, so with fusion on the run must
// record prefix hits somewhere in the workload — otherwise the family path
// is not being exercised and the whole comparison is vacuous. The spill
// configuration uses a per-query limit derived from the naive reference's
// memory profile, the same derivation as TestDifferentialSpillTPCDS.
func TestDifferentialMaskFamilyTPCDS(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	const floorMargin = 256 << 10

	for _, fusion := range []bool{false, true} {
		naive := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, NaiveMasks: true})
		var familyHits int64
		for _, q := range tpcds.Queries() {
			refRes, err := naive.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s naive reference (fusion=%v) failed: %v", q.Name, fusion, err)
			}
			if refRes.Metrics.MaskPrefixHits != 0 {
				t.Fatalf("%s (fusion=%v): naive run counted %d prefix hits", q.Name, fusion, refRes.Metrics.MaskPrefixHits)
			}
			want := exactRows(refRes.Rows)
			var unspillPeak int64
			for op, s := range refRes.Metrics.MemOperators {
				if op != "groupby" && op != "sort" {
					unspillPeak += s.PeakBytes
				}
			}
			peak := refRes.Metrics.PeakMemoryBytes
			limit := unspillPeak + floorMargin
			if peak < unspillPeak+floorMargin+(128<<10) {
				limit = peak + (64 << 10)
			}
			for _, cfg := range maskConfigs {
				c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize}
				var spillDir string
				if cfg.spill {
					spillDir = t.TempDir()
					c.MemoryLimitBytes = limit
					c.SpillDir = spillDir
				}
				res, err := OpenWithStore(st, c).Query(q.SQL)
				if err != nil {
					t.Fatalf("%s %s (fusion=%v) failed: %v", q.Name, cfg.name, fusion, err)
				}
				if got := exactRows(res.Rows); got != want {
					t.Fatalf("%s %s (fusion=%v): family rows differ from naive\ngot:\n%s\nwant:\n%s", q.Name, cfg.name, fusion, got, want)
				}
				if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
					t.Fatalf("%s %s (fusion=%v): BytesScanned %d != %d", q.Name, cfg.name, fusion, got, want)
				}
				if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
					t.Fatalf("%s %s (fusion=%v): RowsProcessed %d != %d", q.Name, cfg.name, fusion, got, want)
				}
				if cfg.spill {
					if res.Metrics.PeakMemoryBytes > limit {
						t.Fatalf("%s %s (fusion=%v): peak tracked memory %d exceeds limit %d", q.Name, cfg.name, fusion, res.Metrics.PeakMemoryBytes, limit)
					}
					if ents, err := os.ReadDir(spillDir); err != nil {
						t.Fatal(err)
					} else if len(ents) != 0 {
						t.Fatalf("%s %s (fusion=%v): %d spill files leaked", q.Name, cfg.name, fusion, len(ents))
					}
				}
				familyHits += res.Metrics.MaskPrefixHits
			}
		}
		if fusion && familyHits == 0 {
			t.Fatalf("fusion=%v: no mask-family prefix hits across TPC-DS — the factored path is not engaging", fusion)
		}
		t.Logf("fusion=%v: %d mask-family prefix hits across TPC-DS", fusion, familyHits)
	}
}

// FuzzDifferentialMaskFamily extends the mask differential to go test -fuzz:
// the fuzzer mutates the generator seed, searching for a query shape where
// shared-prefix factoring or bitmap kernels diverge from naive per-mask
// evaluation.
func FuzzDifferentialMaskFamily(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runMaskDifferential(t, seed)
	})
}
