package engine

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/testgen"
	"repro/internal/tpcds"
	"repro/internal/types"
)

// This file is the data-skipping differential harness: the same query
// corpora as difffuzz_test.go run with zone-map chunk pruning and sideways
// join filters on (the default) and compared against the Config.NoSkip
// baseline, which decodes every surviving partition. Pruning may only
// change physical work: rows byte-identical in identical order, BytesScanned
// and RowsProcessed exact — only Metrics.Skip may differ. Because the
// random corpus spreads values uniformly across partitions (zone maps
// rarely exclude anything there), non-vacuity is asserted on a dedicated
// clustered store whose selective queries provably prune.

// skipModes pairs each execution shape with both skipping settings; the
// NoSkip side re-validates the baseline under the same shape, the skipping
// side is the system under test.
var skipModes = []struct {
	name   string
	noSkip bool
}{
	{"noskip", true},
	{"skip", false},
}

// runSkipDifferential compares one generated query across the full
// configuration matrix and returns the skipping runs' pruned-chunk count so
// corpus-level callers can report coverage.
func runSkipDifferential(t *testing.T, seed int64) int64 {
	st := diffTestStore(t)
	limit := spillTestLimit(defaultSpillTestLimit)
	query := testgen.New(seed).Query()
	var pruned int64
	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, NoSkip: true})
		refRes, err := ref.Query(query)
		if err != nil {
			t.Fatalf("seed %d noskip reference (fusion=%v) failed: %v\n%s", seed, fusion, err, query)
		}
		if refRes.Metrics.Skip.ChunksPruned != 0 {
			t.Fatalf("seed %d (fusion=%v): NoSkip run pruned %d chunks", seed, fusion, refRes.Metrics.Skip.ChunksPruned)
		}
		want := exactRows(refRes.Rows)
		for _, cfg := range maskConfigs {
			for _, mode := range skipModes {
				c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize, NoSkip: mode.noSkip}
				var spillDir string
				if cfg.spill {
					spillDir = t.TempDir()
					c.MemoryLimitBytes = limit
					c.SpillDir = spillDir
				}
				res, err := OpenWithStore(st, c).Query(query)
				if err != nil {
					t.Fatalf("seed %d %s/%s (fusion=%v) failed: %v\n%s", seed, cfg.name, mode.name, fusion, err, query)
				}
				if got := exactRows(res.Rows); got != want {
					t.Fatalf("seed %d %s/%s (fusion=%v): rows differ from noskip reference\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
						seed, cfg.name, mode.name, fusion, query, got, want, res.Plan)
				}
				if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
					t.Fatalf("seed %d %s/%s (fusion=%v): BytesScanned %d != %d\n%s", seed, cfg.name, mode.name, fusion, got, want, query)
				}
				if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
					t.Fatalf("seed %d %s/%s (fusion=%v): RowsProcessed %d != %d\n%s", seed, cfg.name, mode.name, fusion, got, want, query)
				}
				if cfg.spill {
					if res.Metrics.PeakMemoryBytes > limit {
						t.Fatalf("seed %d %s/%s (fusion=%v): peak tracked memory %d exceeds limit %d\n%s",
							seed, cfg.name, mode.name, fusion, res.Metrics.PeakMemoryBytes, limit, query)
					}
					if ents, err := os.ReadDir(spillDir); err != nil {
						t.Fatal(err)
					} else if len(ents) != 0 {
						t.Fatalf("seed %d %s/%s (fusion=%v): %d spill files leaked", seed, cfg.name, mode.name, fusion, len(ents))
					}
				}
				if mode.noSkip {
					if res.Metrics.Skip.ChunksPruned != 0 {
						t.Fatalf("seed %d %s/%s (fusion=%v): NoSkip run pruned %d chunks",
							seed, cfg.name, mode.name, fusion, res.Metrics.Skip.ChunksPruned)
					}
				} else {
					pruned += res.Metrics.Skip.ChunksPruned
				}
			}
		}
	}
	return pruned
}

// TestDifferentialSkip is the bounded pruning-vs-NoSkip corpus wired into
// plain `go test`: a fixed testgen seed range, every seed compared with
// skipping on versus off across the full configuration matrix above.
func TestDifferentialSkip(t *testing.T) {
	const corpus = 60
	var pruned int64
	for seed := int64(0); seed < corpus; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			pruned += runSkipDifferential(t, seed)
		})
	}
	t.Logf("%d chunks pruned across the random corpus", pruned)
}

var (
	skipStoreOnce sync.Once
	skipStore     *storage.Store
	skipStoreErr  error
)

// skipTestStore builds the clustered store the non-vacuity assertions run
// against: per-partition value ranges are disjoint (cs_v), one string
// column is all-NULL in one partition, one float column carries NaN, and
// the dimension's keys land entirely inside the first partition's range so
// sideways join filters prune the rest.
func skipTestStore(t testing.TB) *storage.Store {
	skipStoreOnce.Do(func() {
		cat := catalog.New()
		cat.MustAdd(&catalog.Table{
			Name: "cs",
			Columns: []catalog.Column{
				{Name: "cs_v", Type: types.KindInt64},
				{Name: "cs_w", Type: types.KindInt64},
				{Name: "cs_f", Type: types.KindFloat64},
				{Name: "cs_s", Type: types.KindString},
				{Name: "cs_part", Type: types.KindInt64},
			},
			PartitionColumn: "cs_part",
		})
		cat.MustAdd(&catalog.Table{
			Name: "ck",
			Columns: []catalog.Column{
				{Name: "ck_k", Type: types.KindInt64},
				{Name: "ck_name", Type: types.KindString},
			},
			Keys: [][]string{{"ck_k"}},
		})
		st := storage.NewStore(cat)
		var rows [][]types.Value
		for p := int64(0); p < 4; p++ {
			for i := int64(0); i < 50; i++ {
				v := p*1000 + i
				f := types.Float(float64(v) / 2)
				if p == 3 && i%10 == 0 {
					f = types.Float(math.NaN())
				}
				s := types.String(fmt.Sprintf("s%d", p))
				if p == 2 {
					s = types.NullOf(types.KindString)
				}
				rows = append(rows, []types.Value{types.Int(v), types.Int(i), f, s, types.Int(p)})
			}
		}
		if skipStoreErr = st.Load("cs", rows); skipStoreErr != nil {
			return
		}
		var drows [][]types.Value
		for k := int64(0); k < 50; k += 7 {
			drows = append(drows, []types.Value{types.Int(k), types.String("d")})
		}
		if skipStoreErr = st.Load("ck", drows); skipStoreErr != nil {
			return
		}
		skipStore = st
	})
	if skipStoreErr != nil {
		t.Fatal(skipStoreErr)
	}
	return skipStore
}

// selectiveSkipQueries are queries whose predicates provably exclude whole
// partitions of the clustered store — the non-vacuity set the acceptance
// criterion names.
var selectiveSkipQueries = []string{
	"SELECT cs_v, cs_w FROM cs WHERE cs_v >= 3000",
	"SELECT COUNT(*) AS c, SUM(cs_w) AS s FROM cs WHERE cs_v = 1500",
	"SELECT cs_v FROM cs WHERE cs_s = 's1'",
	"SELECT cs_v FROM cs WHERE cs_s IS NULL",
	"SELECT cs_v FROM cs WHERE cs_v IN (17, 2017)",
	"SELECT cs_v FROM cs WHERE cs_f < 0",
	"SELECT cs_v, cs_w FROM cs WHERE cs_v >= 3000 ORDER BY cs_w DESC LIMIT 5",
	"SELECT cs_v, ck_k FROM cs JOIN ck ON cs_v = ck_k",
}

// TestDifferentialSkipSelective pins non-vacuity: every selective query
// must actually prune chunks (Metrics.Skip.ChunksPruned > 0) while staying
// byte-identical to its NoSkip baseline across the configuration matrix.
func TestDifferentialSkipSelective(t *testing.T) {
	st := skipTestStore(t)
	for qi, query := range selectiveSkipQueries {
		for _, fusion := range []bool{false, true} {
			ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, NoSkip: true})
			refRes, err := ref.Query(query)
			if err != nil {
				t.Fatalf("q%d noskip reference (fusion=%v) failed: %v\n%s", qi, fusion, err, query)
			}
			want := exactRows(refRes.Rows)
			for _, cfg := range maskConfigs {
				if cfg.spill {
					continue // the tiny clustered store never reaches the spill limit
				}
				for _, mode := range skipModes {
					c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize, NoSkip: mode.noSkip}
					res, err := OpenWithStore(st, c).Query(query)
					if err != nil {
						t.Fatalf("q%d %s/%s (fusion=%v) failed: %v\n%s", qi, cfg.name, mode.name, fusion, err, query)
					}
					if got := exactRows(res.Rows); got != want {
						t.Fatalf("q%d %s/%s (fusion=%v): rows differ\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
							qi, cfg.name, mode.name, fusion, query, got, want, res.Plan)
					}
					if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
						t.Fatalf("q%d %s/%s (fusion=%v): BytesScanned %d != %d\n%s", qi, cfg.name, mode.name, fusion, got, want, query)
					}
					if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
						t.Fatalf("q%d %s/%s (fusion=%v): RowsProcessed %d != %d\n%s", qi, cfg.name, mode.name, fusion, got, want, query)
					}
					if mode.noSkip && res.Metrics.Skip.ChunksPruned != 0 {
						t.Fatalf("q%d %s/%s (fusion=%v): NoSkip run pruned chunks\n%s", qi, cfg.name, mode.name, fusion, query)
					}
					if !mode.noSkip {
						if res.Metrics.Skip.ChunksPruned == 0 {
							t.Fatalf("q%d %s/%s (fusion=%v): selective query pruned nothing (vacuous)\n%s\nplan:\n%s",
								qi, cfg.name, mode.name, fusion, query, res.Plan)
						}
						if res.Metrics.Skip.PrunedBytes == 0 {
							t.Fatalf("q%d %s/%s (fusion=%v): pruned chunks but zero pruned bytes\n%s", qi, cfg.name, mode.name, fusion, query)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialSkipTPCDS runs the full TPC-DS workload with skipping on
// versus off. The spill configuration uses a per-query limit derived from
// the NoSkip reference's memory profile, the same derivation as
// TestDifferentialSpillTPCDS.
func TestDifferentialSkipTPCDS(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	const floorMargin = 256 << 10

	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, NoSkip: true})
		var pruned int64
		for _, q := range tpcds.Queries() {
			refRes, err := ref.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s noskip reference (fusion=%v) failed: %v", q.Name, fusion, err)
			}
			want := exactRows(refRes.Rows)
			var unspillPeak int64
			for op, s := range refRes.Metrics.MemOperators {
				if op != "groupby" && op != "sort" {
					unspillPeak += s.PeakBytes
				}
			}
			peak := refRes.Metrics.PeakMemoryBytes
			limit := unspillPeak + floorMargin
			if peak < unspillPeak+floorMargin+(128<<10) {
				limit = peak + (64 << 10)
			}
			for _, cfg := range maskConfigs {
				for _, mode := range skipModes {
					c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize, NoSkip: mode.noSkip}
					var spillDir string
					if cfg.spill {
						spillDir = t.TempDir()
						c.MemoryLimitBytes = limit
						c.SpillDir = spillDir
					}
					res, err := OpenWithStore(st, c).Query(q.SQL)
					if err != nil {
						t.Fatalf("%s %s/%s (fusion=%v) failed: %v", q.Name, cfg.name, mode.name, fusion, err)
					}
					if got := exactRows(res.Rows); got != want {
						t.Fatalf("%s %s/%s (fusion=%v): rows differ from noskip reference\ngot:\n%s\nwant:\n%s", q.Name, cfg.name, mode.name, fusion, got, want)
					}
					if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
						t.Fatalf("%s %s/%s (fusion=%v): BytesScanned %d != %d", q.Name, cfg.name, mode.name, fusion, got, want)
					}
					if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
						t.Fatalf("%s %s/%s (fusion=%v): RowsProcessed %d != %d", q.Name, cfg.name, mode.name, fusion, got, want)
					}
					if cfg.spill {
						if res.Metrics.PeakMemoryBytes > limit {
							t.Fatalf("%s %s/%s (fusion=%v): peak tracked memory %d exceeds limit %d", q.Name, cfg.name, mode.name, fusion, res.Metrics.PeakMemoryBytes, limit)
						}
						if ents, err := os.ReadDir(spillDir); err != nil {
							t.Fatal(err)
						} else if len(ents) != 0 {
							t.Fatalf("%s %s/%s (fusion=%v): %d spill files leaked", q.Name, cfg.name, mode.name, fusion, len(ents))
						}
					}
					if mode.noSkip {
						if res.Metrics.Skip.ChunksPruned != 0 {
							t.Fatalf("%s %s/%s (fusion=%v): NoSkip run pruned %d chunks", q.Name, cfg.name, mode.name, fusion, res.Metrics.Skip.ChunksPruned)
						}
					} else {
						pruned += res.Metrics.Skip.ChunksPruned
					}
				}
			}
		}
		t.Logf("fusion=%v: %d chunks pruned across TPC-DS", fusion, pruned)
	}
}

// FuzzDifferentialSkip extends the pruning-vs-NoSkip differential to go
// test -fuzz: the fuzzer mutates the generator seed, searching for a query
// shape where a zone-map prune, a shared-prefix prune or a sideways join
// filter changes rows or logical metrics.
func FuzzDifferentialSkip(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runSkipDifferential(t, seed)
	})
}
