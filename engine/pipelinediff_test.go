package engine

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/testgen"
	"repro/internal/tpcds"
)

// This file is the push-vs-pull differential harness: the same query corpora
// as difffuzz_test.go run with push-based pipeline fusion on (the default)
// and compared against the PullExec baseline, which executes fusible
// Scan→Filter→Project chains as pull iterators with dense projection
// materialization and keeps scalar aggregation and sort-run generation
// serial. Compiled push loops, selection-carrying projections, per-worker
// partial aggregation and parallel run generation must be unobservable: rows
// byte-identical in identical order, BytesScanned and RowsProcessed exact —
// only Metrics.Pipeline may change. The execution shapes reuse maskConfigs:
// degenerate row-at-a-time, full parallel, adversarial odd shards, and
// parallel under a memory limit so the pipeline sinks exercise their spill
// paths.

// pipelineModes pairs each execution shape with both execution models; the
// pull side re-validates the baseline under the same shape, the push side is
// the system under test.
var pipelineModes = []struct {
	name string
	pull bool
}{
	{"pull", true},
	{"push", false},
}

// runPipelineDifferential compares one generated query across the full
// configuration matrix and returns the push runs' fused-pipeline count so
// corpus-level callers can reject a vacuous comparison.
func runPipelineDifferential(t *testing.T, seed int64) int64 {
	st := diffTestStore(t)
	limit := spillTestLimit(defaultSpillTestLimit)
	query := testgen.New(seed).Query()
	var fused int64
	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, PullExec: true})
		refRes, err := ref.Query(query)
		if err != nil {
			t.Fatalf("seed %d pull reference (fusion=%v) failed: %v\n%s", seed, fusion, err, query)
		}
		if refRes.Metrics.Pipeline.FusedPipelines != 0 {
			t.Fatalf("seed %d (fusion=%v): pull run compiled %d fused pipelines", seed, fusion, refRes.Metrics.Pipeline.FusedPipelines)
		}
		want := exactRows(refRes.Rows)
		for _, cfg := range maskConfigs {
			for _, mode := range pipelineModes {
				c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize, PullExec: mode.pull}
				var spillDir string
				if cfg.spill {
					spillDir = t.TempDir()
					c.MemoryLimitBytes = limit
					c.SpillDir = spillDir
				}
				res, err := OpenWithStore(st, c).Query(query)
				if err != nil {
					t.Fatalf("seed %d %s/%s (fusion=%v) failed: %v\n%s", seed, cfg.name, mode.name, fusion, err, query)
				}
				if got := exactRows(res.Rows); got != want {
					t.Fatalf("seed %d %s/%s (fusion=%v): rows differ from pull reference\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
						seed, cfg.name, mode.name, fusion, query, got, want, res.Plan)
				}
				if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
					t.Fatalf("seed %d %s/%s (fusion=%v): BytesScanned %d != %d\n%s", seed, cfg.name, mode.name, fusion, got, want, query)
				}
				if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
					t.Fatalf("seed %d %s/%s (fusion=%v): RowsProcessed %d != %d\n%s", seed, cfg.name, mode.name, fusion, got, want, query)
				}
				if cfg.spill {
					if res.Metrics.PeakMemoryBytes > limit {
						t.Fatalf("seed %d %s/%s (fusion=%v): peak tracked memory %d exceeds limit %d\n%s",
							seed, cfg.name, mode.name, fusion, res.Metrics.PeakMemoryBytes, limit, query)
					}
					if ents, err := os.ReadDir(spillDir); err != nil {
						t.Fatal(err)
					} else if len(ents) != 0 {
						t.Fatalf("seed %d %s/%s (fusion=%v): %d spill files leaked", seed, cfg.name, mode.name, fusion, len(ents))
					}
				}
				if mode.pull {
					if res.Metrics.Pipeline.FusedPipelines != 0 {
						t.Fatalf("seed %d %s/%s (fusion=%v): pull run compiled %d fused pipelines",
							seed, cfg.name, mode.name, fusion, res.Metrics.Pipeline.FusedPipelines)
					}
				} else {
					fused += res.Metrics.Pipeline.FusedPipelines
				}
			}
		}
	}
	return fused
}

// TestDifferentialPipeline is the bounded push-vs-pull corpus wired into
// plain `go test`: a fixed testgen seed range, every seed compared push
// versus pull across the full configuration matrix above. The corpus as a
// whole must compile fused pipelines somewhere, or the comparison is
// vacuous.
func TestDifferentialPipeline(t *testing.T) {
	const corpus = 60
	var fused int64
	for seed := int64(0); seed < corpus; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			fused += runPipelineDifferential(t, seed)
		})
	}
	if !t.Failed() && fused == 0 {
		t.Fatalf("no fused pipelines across the corpus — the push path is not engaging")
	}
}

// TestDifferentialPipelineTPCDS runs the full TPC-DS workload push versus
// pull. The spill configuration uses a per-query limit derived from the pull
// reference's memory profile, the same derivation as
// TestDifferentialSpillTPCDS. With the push path on, the workload must both
// compile fused pipelines and save projection materializations, or the
// comparison is vacuous.
func TestDifferentialPipelineTPCDS(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	const floorMargin = 256 << 10

	for _, fusion := range []bool{false, true} {
		pull := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1, PullExec: true})
		var fused, saved int64
		for _, q := range tpcds.Queries() {
			refRes, err := pull.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s pull reference (fusion=%v) failed: %v", q.Name, fusion, err)
			}
			if refRes.Metrics.Pipeline.FusedPipelines != 0 {
				t.Fatalf("%s (fusion=%v): pull run compiled %d fused pipelines", q.Name, fusion, refRes.Metrics.Pipeline.FusedPipelines)
			}
			want := exactRows(refRes.Rows)
			var unspillPeak int64
			for op, s := range refRes.Metrics.MemOperators {
				if op != "groupby" && op != "sort" {
					unspillPeak += s.PeakBytes
				}
			}
			peak := refRes.Metrics.PeakMemoryBytes
			limit := unspillPeak + floorMargin
			if peak < unspillPeak+floorMargin+(128<<10) {
				limit = peak + (64 << 10)
			}
			for _, cfg := range maskConfigs {
				for _, mode := range pipelineModes {
					c := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize, PullExec: mode.pull}
					var spillDir string
					if cfg.spill {
						spillDir = t.TempDir()
						c.MemoryLimitBytes = limit
						c.SpillDir = spillDir
					}
					res, err := OpenWithStore(st, c).Query(q.SQL)
					if err != nil {
						t.Fatalf("%s %s/%s (fusion=%v) failed: %v", q.Name, cfg.name, mode.name, fusion, err)
					}
					if got := exactRows(res.Rows); got != want {
						t.Fatalf("%s %s/%s (fusion=%v): rows differ from pull reference\ngot:\n%s\nwant:\n%s", q.Name, cfg.name, mode.name, fusion, got, want)
					}
					if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
						t.Fatalf("%s %s/%s (fusion=%v): BytesScanned %d != %d", q.Name, cfg.name, mode.name, fusion, got, want)
					}
					if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
						t.Fatalf("%s %s/%s (fusion=%v): RowsProcessed %d != %d", q.Name, cfg.name, mode.name, fusion, got, want)
					}
					if cfg.spill {
						if res.Metrics.PeakMemoryBytes > limit {
							t.Fatalf("%s %s/%s (fusion=%v): peak tracked memory %d exceeds limit %d", q.Name, cfg.name, mode.name, fusion, res.Metrics.PeakMemoryBytes, limit)
						}
						if ents, err := os.ReadDir(spillDir); err != nil {
							t.Fatal(err)
						} else if len(ents) != 0 {
							t.Fatalf("%s %s/%s (fusion=%v): %d spill files leaked", q.Name, cfg.name, mode.name, fusion, len(ents))
						}
					}
					if !mode.pull {
						fused += res.Metrics.Pipeline.FusedPipelines
						saved += res.Metrics.Pipeline.MaterializedBatchesSaved
					}
				}
			}
		}
		if fused == 0 {
			t.Fatalf("fusion=%v: no fused pipelines across TPC-DS — the push path is not engaging", fusion)
		}
		if saved == 0 {
			t.Fatalf("fusion=%v: no materializations saved across TPC-DS — fused projections are not engaging", fusion)
		}
		t.Logf("fusion=%v: %d fused pipelines, %d materialized batches saved across TPC-DS", fusion, fused, saved)
	}
}

// FuzzDifferentialPipeline extends the push-vs-pull differential to go test
// -fuzz: the fuzzer mutates the generator seed, searching for a query shape
// where compiled push loops, the scalar-aggregation sink or the sort-run
// sink diverge from pull execution.
func FuzzDifferentialPipeline(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runPipelineDifferential(t, seed)
	})
}
