package engine

import (
	"strings"
	"testing"

	"repro/internal/tpcds"
)

// TestWorkloadSpoolingEquivalence checks the §I comparator: with spooling
// enabled (and fusion off), every query still returns baseline results;
// queries whose duplicated subexpressions are syntactically identical
// (q01, q23, q30, q65, q95, and q88's shared join core) materialize a
// spool and scan less, while queries whose duplicates differ (q09, q28 —
// a different predicate in every subquery) are exactly the case spooling
// cannot help and fusion can.
func TestWorkloadSpoolingEquivalence(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := OpenWithStore(st, Config{})
	spool := OpenWithStore(st, Config{EnableSpooling: true})

	spoolable := map[string]bool{"q01": true, "q23": true, "q30": true, "q65": true, "q88": true, "q95": true}
	for _, q := range tpcds.AffectedQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			baseRes, err := base.Query(q.SQL)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			spoolRes, err := spool.Query(q.SQL)
			if err != nil {
				t.Fatalf("spooled: %v", err)
			}
			b, s := canonicalRows(baseRes.Rows), canonicalRows(spoolRes.Rows)
			if len(b) != len(s) {
				t.Fatalf("row counts differ: %d vs %d\n%s", len(b), len(s), spoolRes.Plan)
			}
			for i := range b {
				if b[i] != s[i] {
					t.Fatalf("row %d differs:\n  %s\n  %s", i, b[i], s[i])
				}
			}
			if spoolable[q.Name] {
				if spoolRes.Metrics.SpoolBytesWritten == 0 {
					t.Errorf("expected a spool materialization:\n%s", spoolRes.Plan)
				}
				if spoolRes.Metrics.SpoolBytesRead < 2*spoolRes.Metrics.SpoolBytesWritten {
					t.Errorf("spool must be read back per consumer: written=%d read=%d",
						spoolRes.Metrics.SpoolBytesWritten, spoolRes.Metrics.SpoolBytesRead)
				}
				if spoolRes.Metrics.Storage.BytesScanned >= baseRes.Metrics.Storage.BytesScanned {
					t.Errorf("spooling should reduce base-table bytes: %d vs %d",
						spoolRes.Metrics.Storage.BytesScanned, baseRes.Metrics.Storage.BytesScanned)
				}
				if !strings.Contains(spoolRes.Plan, "Spool") {
					t.Errorf("plan lacks spool operator:\n%s", spoolRes.Plan)
				}
			} else {
				if spoolRes.Metrics.SpoolBytesWritten != 0 {
					t.Errorf("%s's duplicates differ syntactically; spooling should not trigger:\n%s",
						q.Name, spoolRes.Plan)
				}
			}
		})
	}
}

// TestSpoolingPlusFusion checks the paper's roadmap configuration: fusion
// removes what it can, spooling mops up the rest; results stay identical.
func TestSpoolingPlusFusion(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := OpenWithStore(st, Config{})
	both := OpenWithStore(st, Config{EnableFusion: true, EnableSpooling: true})
	for _, name := range []string{"q65", "q23", "q95", "f01"} {
		q, _ := tpcds.Get(name)
		baseRes, err := base.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		bothRes, err := both.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s fusion+spool: %v", name, err)
		}
		b, s := canonicalRows(baseRes.Rows), canonicalRows(bothRes.Rows)
		if len(b) != len(s) {
			t.Fatalf("%s: row counts differ: %d vs %d", name, len(b), len(s))
		}
		for i := range b {
			if b[i] != s[i] {
				t.Fatalf("%s: row %d differs", name, i)
			}
		}
	}
}
