package engine

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/scanshare"
)

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism = %d, want GOMAXPROCS %d", c.Parallelism, runtime.GOMAXPROCS(0))
	}
	if c.BatchSize != exec.DefaultBatchSize {
		t.Errorf("BatchSize = %d, want %d", c.BatchSize, exec.DefaultBatchSize)
	}
	if c.ScanCacheBytes != scanshare.DefaultCacheBytes {
		t.Errorf("ScanCacheBytes = %d, want %d", c.ScanCacheBytes, int64(scanshare.DefaultCacheBytes))
	}
	if c.MemoryLimitBytes != 0 {
		t.Errorf("MemoryLimitBytes = %d, want 0 (unlimited)", c.MemoryLimitBytes)
	}
	if c.SpillDir != os.TempDir() {
		t.Errorf("SpillDir = %q, want %q", c.SpillDir, os.TempDir())
	}
	if c.EnableFusion || c.EnableSpooling || c.ShareScans {
		t.Errorf("boolean flags must default false, got %+v", c)
	}
}

func TestConfigNormalizeNegativeClamps(t *testing.T) {
	c := Config{Parallelism: -3, BatchSize: -1, ScanCacheBytes: -5, MemoryLimitBytes: -1}.normalize()
	if c.Parallelism <= 0 || c.BatchSize <= 0 || c.ScanCacheBytes <= 0 {
		t.Errorf("negative values not clamped: %+v", c)
	}
	if c.MemoryLimitBytes != 0 {
		t.Errorf("negative MemoryLimitBytes = %d, want 0", c.MemoryLimitBytes)
	}
}

func TestConfigNormalizePreservesExplicit(t *testing.T) {
	in := Config{
		EnableFusion:     true,
		EnableSpooling:   true,
		Parallelism:      3,
		BatchSize:        7,
		ShareScans:       true,
		ScanCacheBytes:   1 << 20,
		MemoryLimitBytes: 4 << 20,
		SpillDir:         "/tmp/spill-here",
		AdmissionWindow:  5 * time.Millisecond,
		MaxFusedQueries:  3,
	}
	if got := in.normalize(); got != in {
		t.Errorf("normalize changed explicit config:\n got %+v\nwant %+v", got, in)
	}
}

func TestConfigNormalizeIdempotent(t *testing.T) {
	once := Config{}.normalize()
	if twice := once.normalize(); twice != once {
		t.Errorf("normalize not idempotent:\n once %+v\ntwice %+v", once, twice)
	}
}

// TestOpenUsesNormalizedConfig checks that Open snapshots the normalized
// config so later queries never see the zero values.
func TestOpenUsesNormalizedConfig(t *testing.T) {
	cat := NewCatalog()
	eng := Open(cat, Config{})
	if eng.config.BatchSize != exec.DefaultBatchSize {
		t.Errorf("Open kept BatchSize %d, want normalized %d", eng.config.BatchSize, exec.DefaultBatchSize)
	}
	if eng.mempool == nil {
		t.Fatal("Open did not create a memory pool")
	}
	if eng.mempool.Limit() != 0 {
		t.Errorf("default pool limit = %d, want 0 (unlimited)", eng.mempool.Limit())
	}
	if eng.mempool.SpillDir() != os.TempDir() {
		t.Errorf("pool spill dir = %q, want %q", eng.mempool.SpillDir(), os.TempDir())
	}
}
