package engine

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/testgen"
	"repro/internal/tpcds"
)

// This file is the result-cache differential harness: the same workloads
// the shared-execution differential uses are replayed against an engine
// with ResultCacheBytes set, and every run — cold, first warm (miss+offer),
// repeat warm (hit), and post-Append warm (invalidated, recomputed, then
// hit again) — must return byte-identical rows with exact BytesScanned and
// RowsProcessed. Only Metrics.ResultCache (and the physical decode work)
// may differ between a cold and a cached run.

// rescacheTestStore builds a private testgen store. The shared
// diffTestStore cannot be used here: the cache lives on the store (first
// caller fixes its size) and the append-invalidation passes mutate data,
// either of which would leak state into the other differential suites.
func rescacheTestStore(t testing.TB) *storage.Store {
	st, err := testgen.NewStore(20260805, 700)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// runResultCacheDifferential compares one generated query set cold-vs-warm
// across the mask configuration matrix, appends rows mid-pass to prove
// invalidation, and returns how many runs were actually served from cache
// so corpus-level callers can reject a vacuous comparison.
func runResultCacheDifferential(t *testing.T, seed int64) int64 {
	st := rescacheTestStore(t)
	limit := spillTestLimit(defaultSpillTestLimit)
	queries := testgen.ShareSet(seed, 5)
	var hits int64
	for _, cfg := range maskConfigs {
		base := Config{Parallelism: cfg.parallelism, BatchSize: cfg.batchSize}
		var spillDir string
		if cfg.spill {
			spillDir = t.TempDir()
			base.MemoryLimitBytes = limit
			base.SpillDir = spillDir
		}
		cold := OpenWithStore(st, base)
		warmCfg := base
		warmCfg.ResultCacheBytes = 1 << 20
		warm := OpenWithStore(st, warmCfg)

		check := func(phase string) {
			for i, q := range queries {
				ref, err := cold.Query(q)
				if err != nil {
					t.Fatalf("seed %d %s %s cold query %d failed: %v\n%s", seed, cfg.name, phase, i, err, q)
				}
				if ref.Metrics.ResultCache != (exec.ResultCacheMetrics{}) {
					t.Fatalf("seed %d %s %s: cache-off engine stamped ResultCache %+v", seed, cfg.name, phase, ref.Metrics.ResultCache)
				}
				want := exactRows(ref.Rows)
				for run := 0; run < 2; run++ {
					res, err := warm.Query(q)
					if err != nil {
						t.Fatalf("seed %d %s %s warm query %d run %d failed: %v\n%s", seed, cfg.name, phase, i, run, err, q)
					}
					if got := exactRows(res.Rows); got != want {
						t.Fatalf("seed %d %s %s query %d run %d: rows differ from cold run\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
							seed, cfg.name, phase, i, run, q, got, want, res.Plan)
					}
					if got := res.Metrics.Storage.BytesScanned; got != ref.Metrics.Storage.BytesScanned {
						t.Fatalf("seed %d %s %s query %d run %d: BytesScanned %d != cold %d\n%s",
							seed, cfg.name, phase, i, run, got, ref.Metrics.Storage.BytesScanned, q)
					}
					if got := res.Metrics.RowsProcessed; got != ref.Metrics.RowsProcessed {
						t.Fatalf("seed %d %s %s query %d run %d: RowsProcessed %d != cold %d\n%s",
							seed, cfg.name, phase, i, run, got, ref.Metrics.RowsProcessed, q)
					}
					if cfg.spill && res.Metrics.PeakMemoryBytes > limit {
						t.Fatalf("seed %d %s %s query %d run %d: peak tracked memory %d exceeds limit %d\n%s",
							seed, cfg.name, phase, i, run, res.Metrics.PeakMemoryBytes, limit, q)
					}
					hits += res.Metrics.ResultCache.Hits
				}
			}
		}
		check("pre-append")
		// The append invalidates every fact-table entry; warm runs must
		// recompute against the new data, stay byte-identical to a fresh
		// cold run, and re-admit so the second post-append run can hit.
		if err := st.Append("fact", [][]Value{
			{Int(3), Int(7), Int(55), Float(9.25), String("alpha"), Int(2)},
			{Int(0), Int(11), Int(96), Float(123.5), String("delta"), Int(5)},
		}); err != nil {
			t.Fatalf("seed %d %s: append: %v", seed, cfg.name, err)
		}
		check("post-append")
		if cfg.spill {
			if ents, err := os.ReadDir(spillDir); err != nil {
				t.Fatal(err)
			} else if len(ents) != 0 {
				t.Fatalf("seed %d %s: %d spill files leaked", seed, cfg.name, len(ents))
			}
		}
	}
	return hits
}

// TestDifferentialResultCache is the bounded cold-vs-warm corpus wired into
// plain `go test`: a fixed testgen seed range, every seed's query set run
// repeatedly against a caching engine and compared run-by-run against a
// cache-off engine, with an Append interleaved mid-pass. The corpus as a
// whole must serve runs from cache somewhere, or the comparison is vacuous.
func TestDifferentialResultCache(t *testing.T) {
	const corpus = 20
	var hits int64
	for seed := int64(0); seed < corpus; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			hits += runResultCacheDifferential(t, seed)
		})
	}
	if !t.Failed() && hits == 0 {
		t.Fatal("no runs served from the result cache across the corpus — the cache is not engaging")
	}
}

// FuzzDifferentialResultCache extends the cold-vs-warm differential to
// `go test -fuzz`: the fuzzer mutates the generator seed, searching for a
// query set where a cached replay, the as-if-solo metric re-charge or the
// append-invalidation path diverges from a cold run.
func FuzzDifferentialResultCache(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runResultCacheDifferential(t, seed)
	})
}

// TestResultCacheAppendInvalidation walks the full entry lifecycle on one
// deterministic query: miss+admit, hit, invalidation by an append to the
// scanned table (with the recomputed result provably different), re-admit,
// hit again — and an append to an unrelated table leaving the entry valid.
func TestResultCacheAppendInvalidation(t *testing.T) {
	st := rescacheTestStore(t)
	cold := OpenWithStore(st, Config{})
	warm := OpenWithStore(st, Config{ResultCacheBytes: 1 << 20})
	const q = "SELECT COUNT(*) AS c, SUM(f_qty) AS s, MIN(f_k2) AS m FROM fact WHERE f_qty > 10"

	query := func(eng *Engine) *Result {
		t.Helper()
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := query(warm)
	if rc := r1.Metrics.ResultCache; rc.Hits != 0 || rc.Misses == 0 {
		t.Fatalf("first run ResultCache = %+v, want a pure miss", rc)
	}
	preAppend := exactRows(r1.Rows)
	if got := exactRows(query(cold).Rows); got != preAppend {
		t.Fatalf("warm miss diverged from cold:\n%s\nvs\n%s", preAppend, got)
	}
	r2 := query(warm)
	if rc := r2.Metrics.ResultCache; rc.Hits != 1 || rc.ServedBytes == 0 {
		t.Fatalf("repeat run ResultCache = %+v, want a hit", rc)
	}
	if got := exactRows(r2.Rows); got != preAppend {
		t.Fatalf("cached rows differ:\n%s\nvs\n%s", got, preAppend)
	}
	if r2.Metrics.Storage.BytesScanned != r1.Metrics.Storage.BytesScanned ||
		r2.Metrics.RowsProcessed != r1.Metrics.RowsProcessed {
		t.Fatalf("hit re-charged %d/%d, miss charged %d/%d",
			r2.Metrics.Storage.BytesScanned, r2.Metrics.RowsProcessed,
			r1.Metrics.Storage.BytesScanned, r1.Metrics.RowsProcessed)
	}

	// Append through the engine: the row passes the WHERE, so the cached
	// aggregate is provably stale and the recomputation provably fresh.
	if err := warm.Append("fact", [][]Value{
		{Int(1), Int(4), Int(77), Float(3.25), String("beta"), Int(1)},
	}); err != nil {
		t.Fatal(err)
	}
	r3 := query(warm)
	if rc := r3.Metrics.ResultCache; rc.Hits != 0 {
		t.Fatalf("post-append run ResultCache = %+v, want invalidation (no hit)", rc)
	}
	postAppend := exactRows(r3.Rows)
	if postAppend == preAppend {
		t.Fatal("append did not change the aggregate — invalidation test is vacuous")
	}
	if got := exactRows(query(cold).Rows); got != postAppend {
		t.Fatalf("post-append warm run diverged from cold:\n%s\nvs\n%s", postAppend, got)
	}
	r4 := query(warm)
	if rc := r4.Metrics.ResultCache; rc.Hits != 1 {
		t.Fatalf("post-append repeat ResultCache = %+v, want re-admitted hit", rc)
	}
	if got := exactRows(r4.Rows); got != postAppend {
		t.Fatalf("re-admitted rows differ:\n%s\nvs\n%s", got, postAppend)
	}

	// An append to a table the entry never scanned leaves it valid.
	if err := warm.Append("dim", [][]Value{{Int(42), String("nowhere"), Int(1)}}); err != nil {
		t.Fatal(err)
	}
	r5 := query(warm)
	if rc := r5.Metrics.ResultCache; rc.Hits != 1 {
		t.Fatalf("append to dim invalidated a fact entry: ResultCache = %+v", rc)
	}
	if got := exactRows(r5.Rows); got != postAppend {
		t.Fatalf("entry surviving unrelated append serves wrong rows:\n%s\nvs\n%s", got, postAppend)
	}
}

// TestResultCacheHitInsideFusedBatch primes the cache, then submits three
// copies of the query concurrently to a ShareExec engine: every batch
// member must be served from cache before grouping, with rows and logical
// metrics identical to a solo run and both the ResultCache and the
// as-if-solo SharedExec story stamped.
func TestResultCacheHitInsideFusedBatch(t *testing.T) {
	st := rescacheTestStore(t)
	const q = "SELECT COUNT(*) AS c, SUM(f_qty) AS s FROM fact WHERE f_qty > 10"
	solo := OpenWithStore(st, Config{})
	soloRes, err := solo.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := exactRows(soloRes.Rows)

	eng := OpenWithStore(st, Config{
		ShareExec:        true,
		AdmissionWindow:  sharedExecWindow,
		MaxFusedQueries:  3,
		ResultCacheBytes: 1 << 20,
	})
	prime, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if prime.Metrics.ResultCache.Hits != 0 {
		t.Fatalf("priming run hit an empty cache: %+v", prime.Metrics.ResultCache)
	}
	if got := exactRows(prime.Rows); got != want {
		t.Fatalf("priming run rows differ from solo:\n%s\nvs\n%s", got, want)
	}

	results, errs := submitConcurrently(eng, []string{q, q, q})
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("client %d failed: %v", i, errs[i])
		}
		if got := exactRows(res.Rows); got != want {
			t.Fatalf("client %d: rows differ from solo run\ngot:\n%s\nwant:\n%s", i, got, want)
		}
		rc := res.Metrics.ResultCache
		if rc.Hits != 1 || rc.ServedBytes == 0 {
			t.Fatalf("client %d: ResultCache = %+v, want the batch member served from cache", i, rc)
		}
		if got := res.Metrics.Storage.BytesScanned; got != soloRes.Metrics.Storage.BytesScanned {
			t.Fatalf("client %d: BytesScanned %d != solo %d", i, got, soloRes.Metrics.Storage.BytesScanned)
		}
		if got := res.Metrics.RowsProcessed; got != soloRes.Metrics.RowsProcessed {
			t.Fatalf("client %d: RowsProcessed %d != solo %d", i, got, soloRes.Metrics.RowsProcessed)
		}
		sh := res.Metrics.SharedExec
		if sh.BatchedQueries != 3 || sh.WindowWaits != 1 {
			t.Fatalf("client %d: SharedExec = %+v, want the 3-member batch story", i, sh)
		}
	}
}

// TestResultCacheAppendQueryRace drives concurrent appends against cached
// and uncached queries on one engine with scan sharing on — the -race soak
// for the Append path against all three caches (chunk LRU, ShapeCache,
// rescache). Correctness here is "no error, no race, and the final count
// sees every append"; per-query results legitimately land before or after
// any given racing append.
func TestResultCacheAppendQueryRace(t *testing.T) {
	st := rescacheTestStore(t)
	eng := OpenWithStore(st, Config{
		Parallelism:      4,
		ShareScans:       true,
		ResultCacheBytes: 1 << 20,
	})
	queries := []string{
		"SELECT COUNT(*) AS c, SUM(f_qty) AS s FROM fact WHERE f_qty > 10",
		"SELECT f_k1, f_qty FROM fact WHERE f_qty > 90",
		"SELECT f_tag FROM fact WHERE f_k1 = 0",
		"SELECT d_name, d_grp FROM dim WHERE d_grp >= 1",
	}
	const appends, rowsPerAppend, readers, reads = 40, 5, 4, 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			rows := make([][]Value, rowsPerAppend)
			for j := range rows {
				rows[j] = []Value{
					Int(int64(i % 8)), Int(int64(j)), Int(int64(20 + i)),
					Float(float64(i) + 0.5), String("soak"), Int(int64(i % 6)),
				}
			}
			if err := eng.Append("fact", rows); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				if _, err := eng.Query(queries[(r+i)%len(queries)]); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	res, err := eng.Query("SELECT COUNT(*) AS c FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Rows[0][0].I, int64(700+appends*rowsPerAppend); got != want {
		t.Fatalf("final count = %d, want %d (lost appends)", got, want)
	}
}

// TestDifferentialResultCacheTPCDS runs every TPC-DS query twice against a
// caching engine and compares each run against a serial cache-off
// reference: whatever sub-plans the cache admits, every replay must be
// byte-identical with exact logical metrics, and the corpus as a whole must
// produce hits.
func TestDifferentialResultCacheTPCDS(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	ref := OpenWithStore(st, Config{Parallelism: 1, BatchSize: 1})
	warm := OpenWithStore(st, Config{ResultCacheBytes: 8 << 20})
	var hits int64
	for _, q := range tpcds.Queries() {
		refRes, err := ref.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s reference failed: %v", q.Name, err)
		}
		want := exactRows(refRes.Rows)
		for run := 0; run < 2; run++ {
			res, err := warm.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s warm run %d failed: %v", q.Name, run, err)
			}
			if got := exactRows(res.Rows); got != want {
				t.Fatalf("%s run %d: rows differ from reference\ngot:\n%s\nwant:\n%s", q.Name, run, got, want)
			}
			if got := res.Metrics.Storage.BytesScanned; got != refRes.Metrics.Storage.BytesScanned {
				t.Fatalf("%s run %d: BytesScanned %d != %d", q.Name, run, got, refRes.Metrics.Storage.BytesScanned)
			}
			if got := res.Metrics.RowsProcessed; got != refRes.Metrics.RowsProcessed {
				t.Fatalf("%s run %d: RowsProcessed %d != %d", q.Name, run, got, refRes.Metrics.RowsProcessed)
			}
			hits += res.Metrics.ResultCache.Hits
		}
	}
	if hits == 0 {
		t.Fatal("no TPC-DS sub-plans served from cache across the corpus")
	}
}
