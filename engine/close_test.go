package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/testgen"
)

func TestEngineCloseRejectsAndIdempotent(t *testing.T) {
	st, err := testgen.NewStore(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	eng := OpenWithStore(st, Config{ShareScans: true})
	if _, err := eng.Query("SELECT f_k1 FROM fact"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := eng.Query("SELECT f_k1 FROM fact"); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close Query err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.QueryAs(context.Background(), "a", "SELECT f_k1 FROM fact"); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close QueryAs err = %v, want ErrEngineClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestEngineCloseDrains closes the engine while queries are in flight
// (including fused shared-execution batches) and checks every query either
// completed normally or was rejected before starting — never dropped — and
// that the engine's goroutines are gone afterwards.
func TestEngineCloseDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	st, err := testgen.NewStore(2, 300)
	if err != nil {
		t.Fatal(err)
	}
	eng := OpenWithStore(st, Config{
		ShareExec:       true,
		AdmissionWindow: 2 * time.Millisecond,
		ShareScans:      true,
	})
	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.Query("SELECT f_k1, f_qty FROM fact WHERE f_qty > 3")
		}(i)
	}
	// Close races the queries: some complete first, stragglers are
	// rejected at beginQuery; none may hang or return a non-lifecycle
	// error.
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrEngineClosed) {
			t.Errorf("query %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after Close: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:m])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSharedShapeCacheAcrossRounds checks the xfuse runner's chain-shape
// cache actually short-circuits the partition-metadata replay when the
// same query shapes fuse again in a later batch.
func TestSharedShapeCacheAcrossRounds(t *testing.T) {
	st, err := testgen.NewStore(3, 300)
	if err != nil {
		t.Fatal(err)
	}
	eng := OpenWithStore(st, Config{
		ShareExec:       true,
		AdmissionWindow: 250 * time.Millisecond,
		MaxFusedQueries: 2,
	})
	defer eng.Close()
	const q = "SELECT f_k1, f_price FROM fact WHERE f_qty > 4"
	pair := func() {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := eng.Query(q); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	pair()
	cache := eng.shared.ShapeCache()
	missesAfterFirst := cache.Misses()
	if missesAfterFirst == 0 {
		t.Skip("first round did not fuse (scheduler never overlapped the submissions)")
	}
	pair()
	if cache.Hits() == 0 {
		t.Fatalf("second fused round did not hit the shape cache (hits=0, misses=%d)", cache.Misses())
	}
	if cache.Misses() != missesAfterFirst {
		t.Errorf("second round recomputed shapes: misses %d -> %d", missesAfterFirst, cache.Misses())
	}
}
