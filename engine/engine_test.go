package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/tpcds"
	"repro/internal/types"
)

// newTPCDSEngines builds a baseline and a fused engine over one shared
// TPC-DS store (scale kept small for test runtime).
func newTPCDSEngines(t testing.TB, scale float64) (*Engine, *Engine) {
	t.Helper()
	st, err := tpcds.NewLoadedStore(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return OpenWithStore(st, Config{EnableFusion: false}),
		OpenWithStore(st, Config{EnableFusion: true})
}

func TestEngineBasicQuery(t *testing.T) {
	cat := NewCatalog()
	cat.MustAdd(&Table{
		Name: "t",
		Columns: []Column{
			{Name: "a", Type: KindInt64},
			{Name: "b", Type: KindString},
		},
	})
	eng := Open(cat, Config{EnableFusion: true})
	if err := eng.Load("t", [][]Value{
		{Int(1), String("x")},
		{Int(2), String("y")},
		{Int(3), String("x")},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT b, COUNT(*) AS cnt FROM t GROUP BY b ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "x" || res.Rows[0][1].I != 2 {
		t.Errorf("first row = %v", res.Rows[0])
	}
	if res.Columns[1] != "cnt" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Metrics.Storage.BytesScanned == 0 {
		t.Error("metrics missing")
	}
}

func TestEngineExplain(t *testing.T) {
	base, fused := newTPCDSEngines(t, 0.05)
	q, _ := tpcds.Get("q65")
	basePlan, err := base.Explain(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	fusedPlan, err := fused.Explain(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fusedPlan, "fusion rules fired") {
		t.Errorf("fused explain should list rules:\n%s", fusedPlan)
	}
	if strings.Contains(basePlan, "fusion rules fired") {
		t.Error("baseline explain must not fire rules")
	}
	if !strings.Contains(fusedPlan, "Window") {
		t.Errorf("q65 fused plan should contain a window:\n%s", fusedPlan)
	}
}

func TestEngineErrors(t *testing.T) {
	cat := NewCatalog()
	cat.MustAdd(&Table{Name: "t", Columns: []Column{{Name: "a", Type: KindInt64}}})
	eng := Open(cat, Config{})
	if _, err := eng.Query("SELECT"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := eng.Query("SELECT zzz FROM t"); err == nil {
		t.Error("bind error not surfaced")
	}
	if err := eng.Load("missing", nil); err == nil {
		t.Error("load into unknown table accepted")
	}
}

// canonicalRows renders rows order-insensitively with float rounding, for
// result equivalence checks.
func canonicalRows(rows [][]Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.Kind == types.KindFloat64 && !v.Null {
				// Round to 4 decimals: summation order may differ.
				parts[j] = types.Float(float64(int64(v.F*1e4+0.5)) / 1e4).String()
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestWorkloadFusionEquivalence is the central correctness gate of the
// reproduction: every workload query must return identical results with
// fusion on and off; affected queries must fire their expected rules and
// scan fewer bytes, and filler queries must be left alone.
func TestWorkloadFusionEquivalence(t *testing.T) {
	base, fused := newTPCDSEngines(t, 0.05)
	for _, q := range tpcds.Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			baseRes, err := base.Query(q.SQL)
			if err != nil {
				t.Fatalf("baseline failed: %v", err)
			}
			fusedRes, err := fused.Query(q.SQL)
			if err != nil {
				t.Fatalf("fused failed: %v", err)
			}

			// Result equivalence (bag semantics; ORDER BY queries are also
			// covered because sorted output canonicalizes identically).
			b := canonicalRows(baseRes.Rows)
			f := canonicalRows(fusedRes.Rows)
			if len(b) != len(f) {
				t.Fatalf("row counts differ: baseline=%d fused=%d\nbaseline plan:\n%s\nfused plan:\n%s",
					len(b), len(f), baseRes.Plan, fusedRes.Plan)
			}
			for i := range b {
				if b[i] != f[i] {
					t.Fatalf("row %d differs:\n  baseline: %s\n  fused:    %s\nfused plan:\n%s",
						i, b[i], f[i], fusedRes.Plan)
				}
			}

			if q.Affected {
				if len(fusedRes.RulesFired) == 0 {
					t.Errorf("expected fusion rules to fire; plan:\n%s", fusedRes.Plan)
				}
				for _, rule := range q.Rules {
					found := false
					for _, fired := range fusedRes.RulesFired {
						if fired == rule {
							found = true
						}
					}
					if !found {
						t.Errorf("expected rule %s; fired %v", rule, fusedRes.RulesFired)
					}
				}
				if fusedRes.Metrics.Storage.BytesScanned >= baseRes.Metrics.Storage.BytesScanned {
					t.Errorf("affected query should scan fewer bytes: baseline=%d fused=%d",
						baseRes.Metrics.Storage.BytesScanned, fusedRes.Metrics.Storage.BytesScanned)
				}
			} else {
				if len(fusedRes.RulesFired) != 0 {
					t.Errorf("filler query changed plan: rules %v\nplan:\n%s", fusedRes.RulesFired, fusedRes.Plan)
				}
				if fusedRes.Metrics.Storage.BytesScanned != baseRes.Metrics.Storage.BytesScanned {
					t.Errorf("filler query bytes changed: baseline=%d fused=%d",
						baseRes.Metrics.Storage.BytesScanned, fusedRes.Metrics.Storage.BytesScanned)
				}
			}
		})
	}
}

// TestWorkloadDeterminism ensures repeated runs return identical results
// (guards against iteration-order nondeterminism in hash operators).
func TestWorkloadDeterminism(t *testing.T) {
	_, fused := newTPCDSEngines(t, 0.02)
	q, _ := tpcds.Get("q65")
	r1, err := fused.Query(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fused.Query(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonicalRows(r1.Rows), canonicalRows(r2.Rows)
	if len(a) != len(b) {
		t.Fatalf("row counts differ across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs", i)
		}
	}
}

func TestExplainIncludesEstimates(t *testing.T) {
	_, fused := newTPCDSEngines(t, 0.02)
	plan, err := fused.Explain("SELECT COUNT(*) AS c FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rows)") {
		t.Errorf("explain lacks cardinality estimates:\n%s", plan)
	}
}

func TestRuntimeErrorSurfaced(t *testing.T) {
	_, fused := newTPCDSEngines(t, 0.02)
	// A scalar subquery returning multiple rows fails at execution time.
	_, err := fused.Query("SELECT (SELECT ss_item_sk FROM store_sales) AS x FROM reason")
	if err == nil || !strings.Contains(err.Error(), "more than one row") {
		t.Errorf("expected single-row violation, got %v", err)
	}
}

func TestNullSemanticsThroughSQL(t *testing.T) {
	cat := NewCatalog()
	cat.MustAdd(&Table{Name: "t", Columns: []Column{
		{Name: "a", Type: KindInt64},
		{Name: "b", Type: KindInt64},
	}})
	eng := Open(cat, Config{EnableFusion: true})
	if err := eng.Load("t", [][]Value{
		{Int(1), Int(10)},
		{Int(2), {Kind: KindInt64, Null: true}},
		{Int(3), Int(30)},
	}); err != nil {
		t.Fatal(err)
	}
	// NULL never satisfies comparisons.
	res, err := eng.Query("SELECT a FROM t WHERE b > 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("comparison over NULL kept %d rows, want 2", len(res.Rows))
	}
	// COUNT(col) skips NULLs; COUNT(*) does not; SUM ignores NULLs.
	res, err = eng.Query("SELECT COUNT(b) AS cb, COUNT(*) AS cs, SUM(b) AS sb FROM t")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].I != 2 || r[1].I != 3 || r[2].I != 40 {
		t.Errorf("NULL aggregate semantics wrong: %v", r)
	}
	// IS NULL works end to end.
	res, err = eng.Query("SELECT a FROM t WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Errorf("IS NULL rows: %v", res.Rows)
	}
}

// TestConcurrentQueries checks the engine is safe for concurrent read-only
// use: one shared store, many goroutines, identical results.
func TestConcurrentQueries(t *testing.T) {
	_, fused := newTPCDSEngines(t, 0.02)
	q, _ := tpcds.Get("q65")
	want, err := fused.Query(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := canonicalRows(want.Rows)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			res, err := fused.Query(q.SQL)
			if err != nil {
				errs <- err
				return
			}
			got := canonicalRows(res.Rows)
			if len(got) != len(wantRows) {
				errs <- fmt.Errorf("row count %d != %d", len(got), len(wantRows))
				return
			}
			for i := range got {
				if got[i] != wantRows[i] {
					errs <- fmt.Errorf("row %d differs", i)
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
