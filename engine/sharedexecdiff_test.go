package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/testgen"
	"repro/internal/tpcds"
)

// This file is the shared-execution differential harness: eligible query
// sets from testgen.ShareSet are submitted concurrently to a ShareExec
// engine — which batches them in an admission window, fuses their plans and
// demultiplexes one fused run back to every client — and each client's
// result is compared against an independent solo run of the same query
// under the same configuration. Batching must be unobservable per client:
// rows byte-identical in identical order, BytesScanned and RowsProcessed
// exact — only Metrics.SharedExec (and the saved physical work) may differ.

// sharedExecWindow is the admission-window backstop used by the tests. The
// batches are sealed by MaxFusedQueries (set to the submission count), so
// the window only fires if goroutine scheduling delays a submission — it
// just needs to be long enough to make that rare and short enough to keep a
// missed seal from stalling the test.
const sharedExecWindow = 250 * time.Millisecond

// submitConcurrently runs every query on eng from its own goroutine and
// waits for all of them.
func submitConcurrently(eng *Engine, queries []string) ([]*Result, []error) {
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			results[i], errs[i] = eng.Query(q)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}

// runSharedExecDifferential compares one generated query set across the
// full configuration matrix and returns how many clients were actually
// served from a fused plan, so corpus-level callers can reject a vacuous
// comparison.
func runSharedExecDifferential(t *testing.T, seed int64) int64 {
	st := diffTestStore(t)
	limit := spillTestLimit(defaultSpillTestLimit)
	queries := testgen.ShareSet(seed, 5)
	var fusedClients int64
	for _, fusion := range []bool{false, true} {
		for _, cfg := range maskConfigs {
			base := Config{EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize}
			var spillDir string
			if cfg.spill {
				spillDir = t.TempDir()
				base.MemoryLimitBytes = limit
				base.SpillDir = spillDir
			}
			solo := OpenWithStore(st, base)
			wantRows := make([]string, len(queries))
			wantScanned := make([]int64, len(queries))
			wantProcessed := make([]int64, len(queries))
			for i, q := range queries {
				res, err := solo.Query(q)
				if err != nil {
					t.Fatalf("seed %d %s (fusion=%v) solo client %d failed: %v\n%s", seed, cfg.name, fusion, i, err, q)
				}
				if res.Metrics.SharedExec != (exec.SharedExecMetrics{}) {
					t.Fatalf("seed %d %s (fusion=%v): ShareExec-off engine stamped SharedExec %+v", seed, cfg.name, fusion, res.Metrics.SharedExec)
				}
				wantRows[i] = exactRows(res.Rows)
				wantScanned[i] = res.Metrics.Storage.BytesScanned
				wantProcessed[i] = res.Metrics.RowsProcessed
			}

			shcfg := base
			shcfg.ShareExec = true
			shcfg.AdmissionWindow = sharedExecWindow
			shcfg.MaxFusedQueries = len(queries)
			shared := OpenWithStore(st, shcfg)
			results, errs := submitConcurrently(shared, queries)
			for i, q := range queries {
				if errs[i] != nil {
					t.Fatalf("seed %d %s (fusion=%v) shared client %d failed: %v\n%s", seed, cfg.name, fusion, i, errs[i], q)
				}
				res := results[i]
				if got := exactRows(res.Rows); got != wantRows[i] {
					t.Fatalf("seed %d %s (fusion=%v) client %d: rows differ from solo run\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
						seed, cfg.name, fusion, i, q, got, wantRows[i], res.Plan)
				}
				if got := res.Metrics.Storage.BytesScanned; got != wantScanned[i] {
					t.Fatalf("seed %d %s (fusion=%v) client %d: BytesScanned %d != solo %d\n%s", seed, cfg.name, fusion, i, got, wantScanned[i], q)
				}
				if got := res.Metrics.RowsProcessed; got != wantProcessed[i] {
					t.Fatalf("seed %d %s (fusion=%v) client %d: RowsProcessed %d != solo %d\n%s", seed, cfg.name, fusion, i, got, wantProcessed[i], q)
				}
				sh := res.Metrics.SharedExec
				if sh.WindowWaits != 1 {
					t.Fatalf("seed %d %s (fusion=%v) client %d: WindowWaits = %d, want 1 (eligible shape bypassed the window?)\n%s",
						seed, cfg.name, fusion, i, sh.WindowWaits, q)
				}
				if sh.FusedPlans >= 2 {
					fusedClients++
				}
				if cfg.spill {
					if res.Metrics.PeakMemoryBytes > limit {
						t.Fatalf("seed %d %s (fusion=%v) client %d: peak tracked memory %d exceeds limit %d\n%s",
							seed, cfg.name, fusion, i, res.Metrics.PeakMemoryBytes, limit, q)
					}
				}
			}
			if cfg.spill {
				if ents, err := os.ReadDir(spillDir); err != nil {
					t.Fatal(err)
				} else if len(ents) != 0 {
					t.Fatalf("seed %d %s (fusion=%v): %d spill files leaked", seed, cfg.name, fusion, len(ents))
				}
			}
		}
	}
	return fusedClients
}

// TestDifferentialSharedExec is the bounded shared-vs-solo corpus wired
// into plain `go test`: a fixed testgen seed range, every seed's query set
// submitted concurrently to a ShareExec engine and compared client-by-client
// against solo runs across the full configuration matrix. The corpus as a
// whole must serve clients from fused plans somewhere, or the comparison is
// vacuous.
func TestDifferentialSharedExec(t *testing.T) {
	const corpus = 20
	var fusedClients int64
	for seed := int64(0); seed < corpus; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			fusedClients += runSharedExecDifferential(t, seed)
		})
	}
	if !t.Failed() && fusedClients == 0 {
		t.Fatalf("no clients served from fused plans across the corpus — shared execution is not engaging")
	}
}

// TestDifferentialSharedExecTPCDS submits every TPC-DS query twice,
// concurrently, to a ShareExec engine: identical duplicates are the
// strongest fusion case (TRUE/TRUE compensations) for the shapes shared
// execution admits, and everything else must bypass the window and still
// return solo-identical results while running concurrently. The spill
// configuration's limit is doubled relative to the solo derivation because
// two copies of an ineligible query hold unspillable state at once.
func TestDifferentialSharedExecTPCDS(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	const floorMargin = 256 << 10

	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		var fusedClients int64
		for _, q := range tpcds.Queries() {
			refRes, err := ref.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s reference (fusion=%v) failed: %v", q.Name, fusion, err)
			}
			want := exactRows(refRes.Rows)
			var unspillPeak int64
			for op, s := range refRes.Metrics.MemOperators {
				if op != "groupby" && op != "sort" {
					unspillPeak += s.PeakBytes
				}
			}
			limit := 2*unspillPeak + floorMargin + refRes.Metrics.PeakMemoryBytes
			for _, cfg := range maskConfigs {
				c := Config{
					EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize,
					ShareExec: true, AdmissionWindow: sharedExecWindow, MaxFusedQueries: 2,
				}
				var spillDir string
				if cfg.spill {
					spillDir = t.TempDir()
					c.MemoryLimitBytes = limit
					c.SpillDir = spillDir
				}
				eng := OpenWithStore(st, c)
				results, errs := submitConcurrently(eng, []string{q.SQL, q.SQL})
				for i := range results {
					if errs[i] != nil {
						t.Fatalf("%s %s (fusion=%v) client %d failed: %v", q.Name, cfg.name, fusion, i, errs[i])
					}
					res := results[i]
					if got := exactRows(res.Rows); got != want {
						t.Fatalf("%s %s (fusion=%v) client %d: rows differ from solo reference\ngot:\n%s\nwant:\n%s",
							q.Name, cfg.name, fusion, i, got, want)
					}
					if got, wantB := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != wantB {
						t.Fatalf("%s %s (fusion=%v) client %d: BytesScanned %d != %d", q.Name, cfg.name, fusion, i, got, wantB)
					}
					if got, wantP := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != wantP {
						t.Fatalf("%s %s (fusion=%v) client %d: RowsProcessed %d != %d", q.Name, cfg.name, fusion, i, got, wantP)
					}
					if cfg.spill && res.Metrics.PeakMemoryBytes > limit {
						t.Fatalf("%s %s (fusion=%v) client %d: peak tracked memory %d exceeds limit %d",
							q.Name, cfg.name, fusion, i, res.Metrics.PeakMemoryBytes, limit)
					}
					if res.Metrics.SharedExec.FusedPlans >= 2 {
						fusedClients++
					}
				}
				if cfg.spill {
					if ents, err := os.ReadDir(spillDir); err != nil {
						t.Fatal(err)
					} else if len(ents) != 0 {
						t.Fatalf("%s %s (fusion=%v): %d spill files leaked", q.Name, cfg.name, fusion, len(ents))
					}
				}
			}
		}
		if fusedClients == 0 {
			t.Fatalf("fusion=%v: no TPC-DS clients served from fused plans — duplicate submissions are not fusing", fusion)
		}
		t.Logf("fusion=%v: %d TPC-DS clients served from fused plans", fusion, fusedClients)
	}
}

// TestSharedExecCancelAndStragglers is the admission-window concurrency
// test: a client that abandons its context never stalls or poisons the
// batch, concurrent clients with different predicates get exactly their own
// rows back, ineligible shapes bypass the window entirely, and a straggler
// arriving after the batch sealed falls back to a clean solo run. The batch
// seal is driven by MaxFusedQueries (the window is a long backstop), so the
// sequencing is deterministic; `go test -race ./engine/` covers the
// Submit/seal/execute interleavings.
func TestSharedExecCancelAndStragglers(t *testing.T) {
	st := diffTestStore(t)
	qB := "SELECT f_k1, f_qty FROM fact WHERE f_qty > 40"
	qC := "SELECT f_k1, f_qty FROM fact WHERE f_price < 700.5"
	qLimit := "SELECT f_k1 FROM fact WHERE f_qty > 10 LIMIT 3"
	qE := "SELECT f_tag FROM fact WHERE f_k2 IS NOT NULL"

	solo := OpenWithStore(st, Config{Parallelism: 4})
	soloRows := map[string]string{}
	soloProcessed := map[string]int64{}
	for _, q := range []string{qB, qC, qLimit, qE} {
		res, err := solo.Query(q)
		if err != nil {
			t.Fatalf("solo %q failed: %v", q, err)
		}
		soloRows[q] = exactRows(res.Rows)
		soloProcessed[q] = res.Metrics.RowsProcessed
	}

	eng := OpenWithStore(st, Config{
		Parallelism: 4, ShareExec: true,
		AdmissionWindow: sharedExecWindow, MaxFusedQueries: 3,
	})

	// Client A joins the batch with an already-canceled context: Submit must
	// return the context error immediately and leave the (abandoned) entry
	// behind without wedging the batch.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(canceled, "SELECT f_k1 FROM fact WHERE f_qty > 5"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled client: err = %v, want context.Canceled", err)
	}

	// Clients B and C fill the batch to MaxFusedQueries; C's arrival seals
	// it. The abandoned entry is skipped, so the fused group is exactly
	// {B, C} — different predicates, so any routing error shows up as
	// cross-client row leakage.
	var wg sync.WaitGroup
	var resB, resC *Result
	var errB, errC error
	wg.Add(2)
	go func() { defer wg.Done(); resB, errB = eng.Query(qB) }()
	time.Sleep(20 * time.Millisecond) // let B join before C seals the batch
	go func() { defer wg.Done(); resC, errC = eng.Query(qC) }()
	wg.Wait()
	for _, cl := range []struct {
		name string
		q    string
		res  *Result
		err  error
	}{{"B", qB, resB, errB}, {"C", qC, resC, errC}} {
		if cl.err != nil {
			t.Fatalf("client %s failed: %v", cl.name, cl.err)
		}
		if got := exactRows(cl.res.Rows); got != soloRows[cl.q] {
			t.Fatalf("client %s: rows differ from solo\ngot:\n%s\nwant:\n%s", cl.name, got, soloRows[cl.q])
		}
		if got := cl.res.Metrics.RowsProcessed; got != soloProcessed[cl.q] {
			t.Fatalf("client %s: RowsProcessed %d != solo %d", cl.name, got, soloProcessed[cl.q])
		}
		sh := cl.res.Metrics.SharedExec
		if sh.BatchedQueries != 2 || sh.FusedPlans != 2 || sh.WindowWaits != 1 {
			t.Fatalf("client %s: SharedExec = %+v, want {BatchedQueries:2 FusedPlans:2 WindowWaits:1}", cl.name, sh)
		}
	}

	// A LIMIT query is ineligible: it must bypass the window (zero
	// SharedExec stamp) and still return solo-identical rows.
	resL, err := eng.Query(qLimit)
	if err != nil {
		t.Fatalf("LIMIT client failed: %v", err)
	}
	if got := exactRows(resL.Rows); got != soloRows[qLimit] {
		t.Fatalf("LIMIT client: rows differ from solo\ngot:\n%s\nwant:\n%s", got, soloRows[qLimit])
	}
	if resL.Metrics.SharedExec != (exec.SharedExecMetrics{}) {
		t.Fatalf("LIMIT client: SharedExec = %+v, want zero (bypass)", resL.Metrics.SharedExec)
	}

	// A straggler after the batch executed opens a fresh batch, waits out
	// the window alone, and falls back to a clean solo run.
	resE, err := eng.Query(qE)
	if err != nil {
		t.Fatalf("straggler failed: %v", err)
	}
	if got := exactRows(resE.Rows); got != soloRows[qE] {
		t.Fatalf("straggler: rows differ from solo\ngot:\n%s\nwant:\n%s", got, soloRows[qE])
	}
	sh := resE.Metrics.SharedExec
	if sh.BatchedQueries != 1 || sh.FusedPlans != 1 || sh.WindowWaits != 1 {
		t.Fatalf("straggler: SharedExec = %+v, want {BatchedQueries:1 FusedPlans:1 WindowWaits:1}", sh)
	}
}

// TestSharedExecMaskFamilyCompileSharing pins the worker-sharing contract of
// the mask-family compiler (the pipeline sinks compile one factoring spec
// per sink and instantiate per worker): raising Parallelism must not repeat
// the factoring analysis, only the cheap per-worker closure instantiation.
func TestSharedExecMaskFamilyCompileSharing(t *testing.T) {
	st := diffTestStore(t)
	query := "SELECT COUNT(*) AS c, SUM(f_qty) AS s FROM fact" +
		" WHERE f_qty > 10 AND f_price < 1500.5 AND f_tag IN ('alpha', 'delta', '')"
	run := func(parallelism int) exec.CompileCounters {
		before := exec.CompileStats()
		if _, err := OpenWithStore(st, Config{Parallelism: parallelism, BatchSize: 64}).Query(query); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		after := exec.CompileStats()
		return exec.CompileCounters{
			MaskFamilyFactorings:     after.MaskFamilyFactorings - before.MaskFamilyFactorings,
			MaskFamilyInstantiations: after.MaskFamilyInstantiations - before.MaskFamilyInstantiations,
		}
	}
	d1 := run(1)
	d8 := run(8)
	if d1.MaskFamilyFactorings == 0 {
		t.Fatal("query compiled no mask families — the factoring counter is not engaging")
	}
	if d8.MaskFamilyFactorings != d1.MaskFamilyFactorings {
		t.Fatalf("factorings scale with parallelism: %d at p=8 vs %d at p=1 — the spec is not shared across workers",
			d8.MaskFamilyFactorings, d1.MaskFamilyFactorings)
	}
	if d8.MaskFamilyInstantiations < d1.MaskFamilyInstantiations {
		t.Fatalf("instantiations shrank with parallelism: %d at p=8 vs %d at p=1", d8.MaskFamilyInstantiations, d1.MaskFamilyInstantiations)
	}
}

// FuzzDifferentialSharedExec extends the shared-vs-solo differential to
// `go test -fuzz`: the fuzzer mutates the generator seed, searching for a
// concurrent query set where fused execution, compensating-mask routing or
// the as-if-solo metric attribution diverges from independent runs.
func FuzzDifferentialSharedExec(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runSharedExecDifferential(t, seed)
	})
}
