package engine

import (
	"os"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/scanshare"
)

// Config controls engine behaviour.
type Config struct {
	// EnableFusion turns on the paper's computation-reuse rules
	// (GroupByJoinToWindow, JoinOnKeys, UnionAllOnJoin, UnionAllFusion and
	// the supporting distinct rules). Default false = baseline engine.
	EnableFusion bool
	// EnableSpooling turns on the paper's §I comparator: duplicated
	// subtrees are materialized once and replayed per consumer instead of
	// (or, when combined with EnableFusion, after) fusion. The spool pass
	// runs on the optimized plan, so with both flags set, spooling handles
	// whatever duplication the fusion rules could not remove — the paper's
	// stated roadmap.
	EnableSpooling bool
	// Parallelism is the number of workers shared by every parallel
	// execution stage: morsel-parallel scan leaves, partition-wise parallel
	// aggregation, and parallel hash-join builds all draw slots from one
	// bounded pool of this size. <= 0 means GOMAXPROCS; 1 forces fully
	// serial execution. Results are bit-for-bit identical at every setting:
	// morsels are delivered in partition order, and partitioned operators
	// merge their per-worker state back in the serial engine's order.
	Parallelism int
	// BatchSize is the number of rows per execution batch. <= 0 means the
	// default (1024); 1 degenerates to row-at-a-time execution, which is
	// useful for benchmarking the vectorization gain in isolation.
	BatchSize int
	// ShareScans opts this engine's queries into cross-query scan sharing:
	// concurrent queries over the same partitions of the same store share
	// chunk-decode work (late arrivals attach to in-flight morsel streams)
	// and misses are backed by a bounded decoded-chunk cache. Results and
	// Metrics.Storage.BytesScanned are identical either way — only the
	// physical work reported by Metrics.Share.BytesDecoded changes. Sharing
	// spans every engine over the same store (see OpenWithStore), whatever
	// their other settings.
	ShareScans bool
	// ScanCacheBytes bounds the shared decoded-chunk cache in estimated
	// resident bytes; <= 0 means the 64 MiB default. The cache belongs to
	// the store, so the first sharing query to run against a store fixes
	// its size.
	ScanCacheBytes int64
	// MemoryLimitBytes bounds the tracked resident memory of all queries
	// running on this engine instance combined: hash-join build tables,
	// aggregation group state, sort buffers, window/spool materializations.
	// Under pressure the pool spills aggregation and sort state to SpillDir
	// (results stay bit-for-bit identical); state that cannot spill fails
	// the query with memctl.ErrMemoryExceeded. <= 0 means unlimited —
	// reservations are tracked for Metrics but never fail and never spill.
	MemoryLimitBytes int64
	// SpillDir is where spill files are written under memory pressure.
	// Empty means os.TempDir(). Files are temp-named, crash-safe to leave
	// behind, and removed when the owning query finishes or is abandoned.
	SpillDir string
	// NaiveMasks disables the mask-family kernel: filter predicates and
	// aggregation FILTER masks are evaluated as independent per-expression
	// value vectors instead of factored bitmap families. Results are
	// identical either way — this is the validation baseline the mask
	// differential tests and `benchrunner -mask` compare against, not a
	// tuning knob. Needs no normalization (false is the default and the
	// fast path).
	NaiveMasks bool
	// ShareExec opts this engine's queries into cross-query shared
	// execution (internal/xfuse): concurrently arriving queries with
	// fusable plan shapes are held in an AdmissionWindow-long batch, fused
	// into one plan via the paper's Fuse primitive, executed once, and
	// demultiplexed back to each client through compensating predicates.
	// Every client's rows and logical metrics (bytes scanned, rows
	// processed) are byte-identical to a solo run; Metrics.SharedExec tells
	// the physical story. Shapes that cannot be fused (or attributed
	// exactly) bypass the window and run solo, so coverage never narrows.
	ShareExec bool
	// AdmissionWindow is how long the first eligible query of a batch waits
	// for companions before the batch executes. <= 0 means 2ms. Only
	// meaningful with ShareExec.
	AdmissionWindow time.Duration
	// MaxFusedQueries seals a batch early once this many queries joined.
	// <= 0 means 8. Only meaningful with ShareExec.
	MaxFusedQueries int
	// ResultCacheBytes, when > 0, opts this engine's queries into the
	// store's semantic sub-plan result cache (internal/rescache): eligible
	// completed sub-plans (Scan→Filter→Project chains, scalar or keyed
	// aggregations over them) are materialized into a cache bounded to this
	// many result bytes under cost-weighted admission, and structurally
	// equal sub-plans of later queries — including members of fused
	// ShareExec batches — are served from cache. Rows and logical metrics
	// (bytes scanned, rows processed) are byte-identical to cold runs;
	// Metrics.ResultCache tells the physical story. Entries are invalidated
	// by Load/Append at partition-set granularity, so appends to other
	// tables leave them valid. The cache belongs to the store, so the first
	// caching query against a store fixes its size. 0 disables the cache
	// (the default; no normalization needed).
	ResultCacheBytes int64
	// PullExec disables push-based pipeline fusion: fusible
	// Scan→Filter→Project chains run as pull iterators with dense
	// projection materialization instead of compiled push loops, and the
	// scalar-aggregation and sort-run pipeline sinks stay serial. Results
	// are identical either way — this is the validation baseline the
	// pipeline differential tests and `benchrunner -pipeline` compare
	// against, not a tuning knob. Needs no normalization (false is the
	// default and the fast path).
	PullExec bool
	// NoSkip disables data skipping: scan leaves decode every surviving
	// partition instead of pruning chunks whose zone maps (write-time
	// min/max/null-count stats) prove the predicate — or a hash join's
	// sideways build-key filter — can match no row. Results and logical
	// metrics (bytes scanned, rows processed) are identical either way;
	// Metrics.Skip tells the physical story. This is the validation baseline
	// the skip differential tests and `benchrunner -skip` compare against,
	// not a tuning knob. Needs no normalization (false is the default and
	// the fast path).
	NoSkip bool
}

// normalize resolves every defaulted Config field to its effective value.
// It is the single place engine-level defaults are decided; Open applies it
// once so the rest of the engine (and exec.Options) sees only concrete
// settings.
func (c Config) normalize() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = exec.DefaultBatchSize
	}
	if c.ScanCacheBytes <= 0 {
		c.ScanCacheBytes = scanshare.DefaultCacheBytes
	}
	if c.MemoryLimitBytes < 0 {
		c.MemoryLimitBytes = 0 // unlimited
	}
	if c.SpillDir == "" {
		c.SpillDir = os.TempDir()
	}
	if c.AdmissionWindow <= 0 {
		c.AdmissionWindow = 2 * time.Millisecond
	}
	if c.MaxFusedQueries <= 0 {
		c.MaxFusedQueries = 8
	}
	return c
}
