package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/testgen"
)

// This file is the differential execution harness: randomized queries from
// internal/testgen run under the degenerate row-at-a-time configuration
// {Parallelism:1, BatchSize:1} and under parallel vectorized configurations
// (including the partition-wise parallel aggregation and join build), with
// fusion both off and on. Rows must be byte-identical in identical order,
// and BytesScanned/RowsProcessed must match exactly — the engine's result
// contract is that execution configuration is unobservable.

var (
	diffOnce  sync.Once
	diffStore *storage.Store
	diffErr   error
)

func diffTestStore(t testing.TB) *storage.Store {
	diffOnce.Do(func() {
		diffStore, diffErr = testgen.NewStore(20260805, 700)
	})
	if diffErr != nil {
		t.Fatal(diffErr)
	}
	return diffStore
}

// diffConfigs are the execution configurations compared against the
// {Parallelism:1, BatchSize:1} reference: full parallel+vectorized, and an
// adversarial small-batch odd-shard-count configuration that stresses
// partition routing and batch boundaries.
var diffConfigs = []struct {
	name        string
	parallelism int
	batchSize   int
}{
	{"p8b1024", 8, 1024},
	{"p3b7", 3, 7},
}

func runDifferential(t *testing.T, seed int64) {
	st := diffTestStore(t)
	query := testgen.New(seed).Query()
	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		refRes, err := ref.Query(query)
		if err != nil {
			t.Fatalf("seed %d reference (fusion=%v) failed: %v\n%s", seed, fusion, err, query)
		}
		want := exactRows(refRes.Rows)
		for _, cfg := range diffConfigs {
			eng := OpenWithStore(st, Config{
				EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize,
			})
			res, err := eng.Query(query)
			if err != nil {
				t.Fatalf("seed %d %s (fusion=%v) failed: %v\n%s", seed, cfg.name, fusion, err, query)
			}
			if got := exactRows(res.Rows); got != want {
				t.Fatalf("seed %d %s (fusion=%v): rows differ\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
					seed, cfg.name, fusion, query, got, want, res.Plan)
			}
			if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
				t.Fatalf("seed %d %s (fusion=%v): bytes scanned %d != %d\n%s",
					seed, cfg.name, fusion, got, want, query)
			}
			if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
				t.Fatalf("seed %d %s (fusion=%v): rows processed %d != %d\n%s",
					seed, cfg.name, fusion, got, want, query)
			}
		}
		if fusion {
			continue
		}
		// Fusion changes plans, so row order and per-operator work may
		// legitimately differ; the row multiset must not.
		fusedRes, err := OpenWithStore(st, Config{EnableFusion: true, Parallelism: 1, BatchSize: 1}).Query(query)
		if err != nil {
			t.Fatalf("seed %d fused reference failed: %v\n%s", seed, err, query)
		}
		b, f := canonicalRows(refRes.Rows), canonicalRows(fusedRes.Rows)
		if len(b) != len(f) {
			t.Fatalf("seed %d: fusion changed row count %d -> %d\n%s", seed, len(b), len(f), query)
		}
		for i := range b {
			if b[i] != f[i] {
				t.Fatalf("seed %d: fusion changed row %d\n  baseline: %s\n  fused:    %s\n%s",
					seed, i, b[i], f[i], query)
			}
		}
	}
}

// TestDifferentialSharedScans is the shared-vs-unshared differential mode:
// one query set runs concurrently (staggered, with repeats, so queries
// attach to each other's in-flight scans and hit the chunk cache) under
// ShareScans off and on, across parallel configurations and fusion
// settings. Every run must reproduce the serial unshared reference
// byte-for-byte, with identical per-query row counts and BytesScanned —
// scan sharing may only change physical decode work, never results or
// logical scan accounting.
func TestDifferentialSharedScans(t *testing.T) {
	// A dedicated store: this test's ScanCacheBytes must be the one that
	// initializes the store's share manager (first sharing run wins), and a
	// small bound keeps eviction in play under the fuzz workload.
	st, err := testgen.NewStore(99173, 600)
	if err != nil {
		t.Fatal(err)
	}
	queries := testgen.QuerySet(424242, 24)

	type ref struct {
		rows    string
		scanned int64
	}
	for _, fusion := range []bool{false, true} {
		serial := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		refs := make([]ref, len(queries))
		for i, q := range queries {
			res, err := serial.Query(q)
			if err != nil {
				t.Fatalf("reference (fusion=%v) failed: %v\n%s", fusion, err, q)
			}
			refs[i] = ref{rows: exactRows(res.Rows), scanned: res.Metrics.Storage.BytesScanned}
		}
		for _, share := range []bool{false, true} {
			engines := []*Engine{
				OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 4, BatchSize: 256,
					ShareScans: share, ScanCacheBytes: 1 << 20}),
				OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 3, BatchSize: 7,
					ShareScans: share, ScanCacheBytes: 1 << 20}),
			}
			const rounds = 2
			var wg sync.WaitGroup
			errs := make(chan error, rounds*len(queries))
			for r := 0; r < rounds; r++ {
				for i, q := range queries {
					r, i, q := r, i, q
					wg.Add(1)
					go func() {
						defer wg.Done()
						time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
						res, err := engines[(r+i)%len(engines)].Query(q)
						if err != nil {
							errs <- fmt.Errorf("query %d (share=%v fusion=%v): %w\n%s", i, share, fusion, err, q)
							return
						}
						if got := exactRows(res.Rows); got != refs[i].rows {
							errs <- fmt.Errorf("query %d (share=%v fusion=%v): rows differ from serial unshared reference\n%s", i, share, fusion, q)
							return
						}
						if got := res.Metrics.Storage.BytesScanned; got != refs[i].scanned {
							errs <- fmt.Errorf("query %d (share=%v fusion=%v): BytesScanned %d != %d\n%s", i, share, fusion, got, refs[i].scanned, q)
							return
						}
					}()
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		}
	}
}

// TestDifferentialParallelEquivalence is the bounded corpus wired into
// plain `go test`: a fixed seed range, so CI covers the same queries every
// run.
func TestDifferentialParallelEquivalence(t *testing.T) {
	const corpus = 140
	for seed := int64(0); seed < corpus; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			runDifferential(t, seed)
		})
	}
}

// FuzzDifferentialExec extends the harness to go test -fuzz: the fuzzer
// mutates the generator seed, searching for a query shape where a parallel
// configuration diverges from row-at-a-time execution.
func FuzzDifferentialExec(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runDifferential(t, seed)
	})
}
