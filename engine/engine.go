// Package engine is the public API of the query engine: an embeddable,
// Athena-style streaming SQL engine with computation reuse via query fusion
// (Bruno et al., "Computation Reuse via Fusion in Amazon Athena",
// ICDE 2022).
//
// Usage:
//
//	cat := engine.NewCatalog()
//	cat.MustAdd(&engine.Table{ ... })
//	eng := engine.Open(cat, engine.Config{EnableFusion: true})
//	eng.Load("t", rows)
//	res, err := eng.Query("SELECT ...")
//
// The Config.EnableFusion switch toggles the paper's optimization rules;
// everything else (parser, binder, classical optimizer, streaming executor,
// partitioned columnar storage with bytes-scanned accounting) is shared, so
// baseline-versus-fused comparisons isolate exactly the paper's
// contribution.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/optimizer"
	"repro/internal/scanshare"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/xfuse"
)

// ErrMemoryExceeded is returned (wrapped) when a query's unspillable state
// cannot fit in Config.MemoryLimitBytes even after spilling everything that
// can spill. Test with errors.Is; the full *memctl.MemoryExceededError
// carries the query text, operator, and peak usage.
var ErrMemoryExceeded = memctl.ErrMemoryExceeded

// ErrEngineClosed is returned by queries submitted after Close. Test with
// errors.Is.
var ErrEngineClosed = errors.New("engine: closed")

// Re-exported building blocks so embedders need only this package.
type (
	// Value is a SQL scalar value.
	Value = types.Value
	// Table declares a base table's schema.
	Table = catalog.Table
	// Column declares one table column.
	Column = catalog.Column
	// Catalog is a collection of table definitions.
	Catalog = catalog.Catalog
	// Metrics carries per-query execution counters.
	Metrics = exec.Metrics
	// SkipMetrics carries the data-skipping counters (Metrics.Skip).
	SkipMetrics = exec.SkipMetrics
)

// Scalar kind constants for table declarations.
const (
	KindBool    = types.KindBool
	KindInt64   = types.KindInt64
	KindFloat64 = types.KindFloat64
	KindString  = types.KindString
	KindDate    = types.KindDate
)

// Value constructors.
var (
	Int    = types.Int
	Float  = types.Float
	String = types.String
	Bool   = types.Bool
	Date   = types.Date
)

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return catalog.New() }

// Engine is an embeddable SQL engine instance.
type Engine struct {
	store  *storage.Store
	binder *binder.Binder
	config Config // normalized (see Config.normalize)
	// mempool is the engine-level memory budget shared by every query this
	// instance runs; blocking operators reserve against it and spill to
	// config.SpillDir under pressure.
	mempool *memctl.Pool
	// workers is the engine-resident worker pool shared by every solo query
	// this instance runs: concurrent queries contend for Parallelism slots
	// total instead of Parallelism each, which is what makes a resident
	// multi-tenant service's CPU footprint configuration-bounded. Fused
	// shared-execution runs size their own pools (see xfuse.Runner).
	workers *exec.WorkerPool
	// shared batches concurrently arriving queries for cross-query fused
	// execution; nil unless Config.ShareExec.
	shared *xfuse.Runner

	// mu/queries/closed implement the Close lifecycle: queries register
	// under the read lock, Close flips closed under the write lock and then
	// drains.
	mu      sync.RWMutex
	queries sync.WaitGroup
	closed  bool
}

// Open creates an engine over the catalog.
func Open(cat *Catalog, cfg Config) *Engine {
	return newEngine(storage.NewStore(cat), cat, cfg)
}

// OpenWithStore creates an engine over an existing loaded store (sharing
// data between engine instances, e.g. a baseline and a fused engine).
func OpenWithStore(st *storage.Store, cfg Config) *Engine {
	return newEngine(st, st.Catalog(), cfg)
}

func newEngine(st *storage.Store, cat *Catalog, cfg Config) *Engine {
	cfg = cfg.normalize()
	e := &Engine{
		store:   st,
		binder:  binder.New(cat),
		config:  cfg,
		mempool: memctl.NewPool(cfg.MemoryLimitBytes, cfg.SpillDir),
		workers: exec.NewWorkerPool(cfg.Parallelism),
	}
	if cfg.ShareExec {
		e.shared = xfuse.NewRunner(st, e.execOptions(""), xfuse.Config{
			Window:     cfg.AdmissionWindow,
			MaxQueries: cfg.MaxFusedQueries,
		})
	}
	return e
}

// execOptions is the single translation from engine config to execution
// options; the shared-execution runner gets the same template (with
// QueryText filled per fused run).
func (e *Engine) execOptions(sqlText string) exec.Options {
	return e.execOptionsAs(sqlText, "")
}

// execOptionsAs is execOptions with per-tenant memory attribution.
func (e *Engine) execOptionsAs(sqlText, tenant string) exec.Options {
	return exec.Options{
		Parallelism:    e.config.Parallelism,
		BatchSize:      e.config.BatchSize,
		ShareScans:     e.config.ShareScans,
		ScanCacheBytes: e.config.ScanCacheBytes,
		MemPool:        e.mempool,
		Workers:        e.workers,
		Tenant:         tenant,
		QueryText:      sqlText,
		NaiveMasks:     e.config.NaiveMasks,
		PullExec:       e.config.PullExec,
		NoSkip:         e.config.NoSkip,

		ResultCacheBytes: e.config.ResultCacheBytes,
	}
}

// Store exposes the underlying store (for sharing via OpenWithStore).
func (e *Engine) Store() *storage.Store { return e.store }

// MemPool exposes the engine's memory budget pool; a service layer uses it
// to gate per-tenant admission (memctl.Pool.TenantUsed) and to wait for
// pressure to subside (memctl.Pool.ReleaseWait) instead of failing queries.
func (e *Engine) MemPool() *memctl.Pool { return e.mempool }

// ExpectShared announces to the shared-execution admission window that n
// queries are about to be submitted (a service dispatch round), so they
// land in one batch deterministically instead of racing the wall-clock
// window. The returned func cancels whatever part of the announcement never
// arrives; it is idempotent and must eventually be called. Without
// Config.ShareExec this is a no-op.
func (e *Engine) ExpectShared(n int) (done func()) {
	if e.shared == nil {
		return func() {}
	}
	return e.shared.ExpectArrivals(n)
}

// beginQuery registers a query run against the Close lifecycle.
func (e *Engine) beginQuery() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.queries.Add(1)
	return nil
}

func (e *Engine) endQuery() { e.queries.Done() }

// Close shuts the engine down: new queries fail with ErrEngineClosed,
// in-flight queries (including fused shared runs) are drained to
// completion, the resident worker pool is released, and any chunk decodes
// this engine led through the store's scan-share manager are allowed to
// resolve. The store itself is untouched — other engines over it keep
// working — and Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	if e.shared != nil {
		// Seal the open admission window and drain fused executions; their
		// submitters are registered in queries and finish next.
		e.shared.Close()
	}
	e.queries.Wait()
	e.workers.Close()
	if e.config.ShareScans {
		// Wait out in-flight chunk decodes (bounded, pure CPU); open streams
		// may belong to other engines over the same store and are left alone.
		scanshare.For(e.store, e.config.ScanCacheBytes).Quiesce()
	}
	return nil
}

// Load ingests rows into a table; row values must match the declared column
// order and types.
func (e *Engine) Load(table string, rows [][]Value) error {
	return e.store.Load(table, rows)
}

// Append ingests rows into a table as new partitions alongside the
// existing data — the runtime write path. It is safe to call while queries
// run: readers see either the pre- or post-append partition set, never a
// mix, and epoch- and partition-signature-keyed caches (chain shapes,
// cached sub-plan results) invalidate exactly the entries the append
// touches.
func (e *Engine) Append(table string, rows [][]Value) error {
	return e.store.Append(table, rows)
}

// Result is a fully materialized query result.
type Result struct {
	// Columns are the output column names.
	Columns []string
	// Rows holds the result tuples.
	Rows [][]Value
	// Metrics carries latency, bytes scanned, rows processed, and hash
	// memory counters for the run.
	Metrics Metrics
	// RulesFired lists the fusion rules that changed the plan, in order.
	RulesFired []string
	// Plan is the optimized logical plan (EXPLAIN text).
	Plan string
}

// Query parses, plans, optimizes and executes a SQL query.
func (e *Engine) Query(sqlText string) (*Result, error) {
	return e.QueryContext(context.Background(), sqlText)
}

// QueryContext is Query with cancellation: under Config.ShareExec a caller
// abandoning ctx mid-window leaves its batch cleanly (the remaining
// queries still fuse and run). Without ShareExec the context is checked
// before execution only.
func (e *Engine) QueryContext(ctx context.Context, sqlText string) (*Result, error) {
	p, err := e.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx)
}

// QueryAs is QueryContext with the run's memory charged to tenant in the
// engine pool's per-tenant rollup (memctl.Pool.TenantUsed) — the primitive
// a multi-tenant service builds budgets on. An empty tenant is
// unattributed, exactly like QueryContext.
func (e *Engine) QueryAs(ctx context.Context, tenant, sqlText string) (*Result, error) {
	p, err := e.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	return p.RunContextAs(ctx, tenant)
}

// Prepared is a planned query that can be executed repeatedly without
// re-optimizing — how a production engine amortizes planning, and how the
// benchmarks separate plan-time from run-time.
type Prepared struct {
	eng        *Engine
	plan       logical.Operator
	names      []string
	rulesFired []string
	sqlText    string
}

// Prepare parses, binds and optimizes a query without executing it.
func (e *Engine) Prepare(sqlText string) (*Prepared, error) {
	plan, names, trace, err := e.plan(sqlText)
	if err != nil {
		return nil, err
	}
	return &Prepared{eng: e, plan: plan, names: names, rulesFired: trace.Fired, sqlText: sqlText}, nil
}

// Plan returns the optimized logical plan text.
func (p *Prepared) Plan() string { return logical.Format(p.plan) }

// RulesFired lists the fusion rules that changed the plan.
func (p *Prepared) RulesFired() []string { return p.rulesFired }

// Run executes the prepared plan.
func (p *Prepared) Run() (*Result, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the prepared plan. Under Config.ShareExec the plan is
// first offered to the admission window: if it fuses with concurrently
// submitted queries, the returned result was demultiplexed from one shared
// run (byte-identical to solo, with Metrics.SharedExec set); otherwise it
// falls through to an ordinary solo run. ctx cancellation is honored while
// waiting on the window — execution already in flight completes on behalf
// of the rest of the batch.
func (p *Prepared) RunContext(ctx context.Context) (*Result, error) {
	return p.RunContextAs(ctx, "")
}

// RunContextAs is RunContext with the run's memory charged to tenant (see
// Engine.QueryAs).
func (p *Prepared) RunContextAs(ctx context.Context, tenant string) (*Result, error) {
	if err := p.eng.beginQuery(); err != nil {
		return nil, err
	}
	defer p.eng.endQuery()
	var stamp exec.SharedExecMetrics
	if p.eng.shared != nil {
		res, st, err := p.eng.shared.Submit(ctx, p.sqlText, p.plan)
		if err != nil {
			return nil, fmt.Errorf("engine: executing: %w", err)
		}
		if res != nil {
			return p.wrap(res), nil
		}
		stamp = st
	} else if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: executing: %w", err)
	}
	res, err := exec.RunWith(p.plan, p.eng.store, p.eng.execOptionsAs(p.sqlText, tenant))
	if err != nil {
		return nil, fmt.Errorf("engine: executing: %w", err)
	}
	res.Metrics.SharedExec = stamp
	return p.wrap(res), nil
}

func (p *Prepared) wrap(res *exec.Result) *Result {
	return &Result{
		Columns:    p.names,
		Rows:       res.Rows,
		Metrics:    res.Metrics,
		RulesFired: p.rulesFired,
		Plan:       logical.Format(p.plan),
	}
}

// Explain returns the optimized logical plan without executing it, each
// operator annotated with its estimated cardinality.
func (e *Engine) Explain(sqlText string) (string, error) {
	plan, _, trace, err := e.plan(sqlText)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if len(trace.Fired) > 0 {
		fmt.Fprintf(&b, "-- fusion rules fired: %s\n", strings.Join(trace.Fired, ", "))
	}
	b.WriteString(logical.FormatWith(plan, func(op logical.Operator) string {
		return fmt.Sprintf("(~%.0f rows)", logical.EstimateRows(op))
	}))
	return b.String(), nil
}

func (e *Engine) plan(sqlText string) (logical.Operator, []string, *optimizer.Trace, error) {
	bound, names, err := e.binder.BindSQL(sqlText)
	if err != nil {
		return nil, nil, nil, err
	}
	outputs := bound.Schema()
	opts := optimizer.Options{
		EnableFusion:  e.config.EnableFusion,
		MaxIterations: 10,
		Required:      outputs,
	}
	optimized, trace := optimizer.Optimize(bound, opts)
	if e.config.EnableSpooling {
		optimized, _ = optimizer.SpoolCommonSubplans(optimized)
	}
	if err := logical.Validate(optimized); err != nil {
		return nil, nil, nil, fmt.Errorf("engine: optimizer produced invalid plan: %w", err)
	}
	// Restore the statement's exact output schema (optimization may have
	// widened or reordered the root).
	optimized = restoreOutputs(optimized, outputs)
	return optimized, names, trace, nil
}

// restoreOutputs wraps the plan so its schema is exactly the bound output
// columns, in order.
func restoreOutputs(plan logical.Operator, outputs []*expr.Column) logical.Operator {
	sch := plan.Schema()
	if len(sch) == len(outputs) {
		same := true
		for i := range sch {
			if sch[i] != outputs[i] {
				same = false
				break
			}
		}
		if same {
			return plan
		}
	}
	// Sorts and limits must stay above the output projection.
	switch o := plan.(type) {
	case *logical.Limit:
		return &logical.Limit{Input: restoreOutputs(o.Input, outputs), N: o.N}
	case *logical.Sort:
		return &logical.Sort{Input: restoreOutputs(o.Input, outputs), Keys: o.Keys}
	}
	proj := &logical.Project{Input: plan}
	for _, c := range outputs {
		proj.Cols = append(proj.Cols, logical.Assignment{Col: c, E: expr.Ref(c)})
	}
	return proj
}
