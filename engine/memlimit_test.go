package engine

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"repro/internal/testgen"
	"repro/internal/tpcds"
)

// This file is the memory-governance differential harness: the same query
// corpora as difffuzz_test.go run under a memory limit low enough that
// aggregations and sorts demonstrably spill to disk, and every run must
// still reproduce the unlimited serial reference byte-for-byte with
// identical BytesScanned and RowsProcessed. Spilling (like parallelism,
// batch size and scan sharing) must be unobservable in results — only
// Metrics.SpilledBytes/SpillFiles/PeakMemoryBytes may change.

// spillTestLimit is the per-engine memory budget the differential spill
// corpus runs under. Low enough that testgen's aggregation and sort state
// spills, high enough that unspillable state (join builds, window buffers)
// still fits. REPRO_TEST_MEMLIMIT overrides it, which is how the CI
// spill-stress job tightens the screw.
const defaultSpillTestLimit = 96 << 10

func spillTestLimit(def int64) int64 {
	if s := os.Getenv("REPRO_TEST_MEMLIMIT"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// spillConfigs cover the full execution matrix under a memory limit:
// degenerate row-at-a-time, full parallel, adversarial odd shards, and
// parallel with cross-query scan sharing.
var spillConfigs = []struct {
	name        string
	parallelism int
	batchSize   int
	share       bool
}{
	{"p1b1", 1, 1, false},
	{"p8b1024", 8, 1024, false},
	{"p3b7", 3, 7, false},
	{"p4b256share", 4, 256, true},
}

func TestDifferentialSpill(t *testing.T) {
	st := diffTestStore(t)
	limit := spillTestLimit(defaultSpillTestLimit)
	const corpus = 60

	queries := make([]string, corpus)
	for seed := range queries {
		queries[seed] = testgen.New(int64(seed)).Query()
	}

	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		type refResult struct {
			rows      string
			scanned   int64
			processed int64
		}
		refs := make([]refResult, corpus)
		for i, q := range queries {
			res, err := ref.Query(q)
			if err != nil {
				t.Fatalf("reference (fusion=%v) failed: %v\n%s", fusion, err, q)
			}
			refs[i] = refResult{exactRows(res.Rows), res.Metrics.Storage.BytesScanned, res.Metrics.RowsProcessed}
		}

		spilledByOp := map[string]int64{}
		for _, cfg := range spillConfigs {
			spillDir := t.TempDir()
			eng := OpenWithStore(st, Config{
				EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize,
				ShareScans: cfg.share, ScanCacheBytes: 1 << 20,
				MemoryLimitBytes: limit, SpillDir: spillDir,
			})
			for i, q := range queries {
				res, err := eng.Query(q)
				if err != nil {
					t.Fatalf("seed %d %s (fusion=%v limit=%d) failed: %v\n%s", i, cfg.name, fusion, limit, err, q)
				}
				if got := exactRows(res.Rows); got != refs[i].rows {
					t.Fatalf("seed %d %s (fusion=%v): rows differ under memory limit\nquery:\n%s\ngot:\n%s\nwant:\n%s\nplan:\n%s",
						i, cfg.name, fusion, q, got, refs[i].rows, res.Plan)
				}
				if got := res.Metrics.Storage.BytesScanned; got != refs[i].scanned {
					t.Fatalf("seed %d %s (fusion=%v): BytesScanned %d != %d\n%s", i, cfg.name, fusion, got, refs[i].scanned, q)
				}
				if got := res.Metrics.RowsProcessed; got != refs[i].processed {
					t.Fatalf("seed %d %s (fusion=%v): RowsProcessed %d != %d\n%s", i, cfg.name, fusion, got, refs[i].processed, q)
				}
				if res.Metrics.PeakMemoryBytes > limit {
					t.Fatalf("seed %d %s (fusion=%v): peak tracked memory %d exceeds limit %d\n%s",
						i, cfg.name, fusion, res.Metrics.PeakMemoryBytes, limit, q)
				}
				for op, st := range res.Metrics.MemOperators {
					spilledByOp[op] += st.SpilledBytes
				}
			}
			if ents, err := os.ReadDir(spillDir); err != nil {
				t.Fatal(err)
			} else if len(ents) != 0 {
				t.Fatalf("%s (fusion=%v): %d spill files leaked in %s", cfg.name, fusion, len(ents), spillDir)
			}
		}
		// The corpus must actually exercise the spill paths, or the whole
		// test is vacuous: both aggregation and sort must have shed bytes.
		if spilledByOp["groupby"] == 0 {
			t.Fatalf("fusion=%v: no aggregation spill across the corpus (per-op: %v); limit %d too high", fusion, spilledByOp, limit)
		}
		if spilledByOp["sort"] == 0 {
			t.Fatalf("fusion=%v: no sort spill across the corpus (per-op: %v); limit %d too high", fusion, spilledByOp, limit)
		}
	}
}

// TestDifferentialSpillTPCDS runs the full TPC-DS workload (the paper's
// eight affected queries plus the filler set) under per-query memory
// limits derived from each query's own unlimited memory profile: the limit
// sits a fixed margin above the query's unspillable floor (join builds,
// window buffers, spools) and below its total peak, so queries with
// substantial aggregation or sort state are forced to spill while
// join-dominated queries (whose state cannot spill) still fit. Every run
// must match the unlimited serial reference byte-for-byte.
func TestDifferentialSpillTPCDS(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	// floorMargin is the headroom above the unspillable floor a limited run
	// needs: replay reserves in 64KB chunks, merge cursors hold a few rows.
	const floorMargin = 256 << 10

	for _, fusion := range []bool{false, true} {
		ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		var spilledQueries, testedQueries int
		for _, q := range tpcds.Queries() {
			refRes, err := ref.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s reference (fusion=%v) failed: %v", q.Name, fusion, err)
			}
			var spillablePeak, unspillPeak int64
			for op, s := range refRes.Metrics.MemOperators {
				if op == "groupby" || op == "sort" {
					spillablePeak += s.PeakBytes
				} else {
					unspillPeak += s.PeakBytes
				}
			}
			peak := refRes.Metrics.PeakMemoryBytes
			// Force a spill only when the query's peak clears the floor by
			// enough that a limit between them is safe; otherwise just check
			// the query survives a limit at its own peak.
			expectSpill := peak >= unspillPeak+floorMargin+(128<<10)
			limit := unspillPeak + floorMargin
			if !expectSpill {
				limit = peak + (64 << 10)
			}
			testedQueries++
			if expectSpill {
				spilledQueries++
			}
			want := exactRows(refRes.Rows)
			for _, cfg := range spillConfigs {
				spillDir := t.TempDir()
				eng := OpenWithStore(st, Config{
					EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize,
					ShareScans: cfg.share, ScanCacheBytes: 1 << 20,
					MemoryLimitBytes: limit, SpillDir: spillDir,
				})
				res, err := eng.Query(q.SQL)
				if err != nil {
					t.Fatalf("%s %s (fusion=%v limit=%d) failed: %v", q.Name, cfg.name, fusion, limit, err)
				}
				if got := exactRows(res.Rows); got != want {
					t.Fatalf("%s %s (fusion=%v): rows differ under memory limit\ngot:\n%s\nwant:\n%s", q.Name, cfg.name, fusion, got, want)
				}
				if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
					t.Fatalf("%s %s (fusion=%v): BytesScanned %d != %d", q.Name, cfg.name, fusion, got, want)
				}
				if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
					t.Fatalf("%s %s (fusion=%v): RowsProcessed %d != %d", q.Name, cfg.name, fusion, got, want)
				}
				if res.Metrics.PeakMemoryBytes > limit {
					t.Fatalf("%s %s (fusion=%v): peak tracked memory %d exceeds limit %d", q.Name, cfg.name, fusion, res.Metrics.PeakMemoryBytes, limit)
				}
				if expectSpill && res.Metrics.SpilledBytes == 0 {
					t.Fatalf("%s %s (fusion=%v): expected a spill at limit %d (ref peak %d, floor %d) but none happened",
						q.Name, cfg.name, fusion, limit, peak, unspillPeak)
				}
				if ents, err := os.ReadDir(spillDir); err != nil {
					t.Fatal(err)
				} else if len(ents) != 0 {
					t.Fatalf("%s %s (fusion=%v): %d spill files leaked", q.Name, cfg.name, fusion, len(ents))
				}
			}
		}
		if spilledQueries == 0 {
			t.Fatalf("fusion=%v: no TPC-DS query qualified for a forced spill (of %d)", fusion, testedQueries)
		}
		t.Logf("fusion=%v: %d/%d TPC-DS queries forced to spill", fusion, spilledQueries, testedQueries)
	}
}

// FuzzDifferentialSpill extends the spill differential to go test -fuzz:
// the fuzzer mutates the generator seed, searching for a query shape whose
// results change when execution runs under a tight memory budget.
func FuzzDifferentialSpill(f *testing.F) {
	for _, seed := range []int64{0, 1, 17, 42, 20220513, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		st := diffTestStore(t)
		limit := spillTestLimit(defaultSpillTestLimit)
		query := testgen.New(seed).Query()
		for _, fusion := range []bool{false, true} {
			ref := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
			refRes, err := ref.Query(query)
			if err != nil {
				t.Fatalf("seed %d reference (fusion=%v) failed: %v\n%s", seed, fusion, err, query)
			}
			want := exactRows(refRes.Rows)
			for _, cfg := range spillConfigs {
				spillDir := t.TempDir()
				eng := OpenWithStore(st, Config{
					EnableFusion: fusion, Parallelism: cfg.parallelism, BatchSize: cfg.batchSize,
					ShareScans: cfg.share, ScanCacheBytes: 1 << 20,
					MemoryLimitBytes: limit, SpillDir: spillDir,
				})
				res, err := eng.Query(query)
				if err != nil {
					t.Fatalf("seed %d %s (fusion=%v limit=%d) failed: %v\n%s", seed, cfg.name, fusion, limit, err, query)
				}
				if got := exactRows(res.Rows); got != want {
					t.Fatalf("seed %d %s (fusion=%v): rows differ under memory limit\nquery:\n%s\ngot:\n%s\nwant:\n%s",
						seed, cfg.name, fusion, query, got, want)
				}
				if got, want := res.Metrics.Storage.BytesScanned, refRes.Metrics.Storage.BytesScanned; got != want {
					t.Fatalf("seed %d %s (fusion=%v): BytesScanned %d != %d\n%s", seed, cfg.name, fusion, got, want, query)
				}
				if got, want := res.Metrics.RowsProcessed, refRes.Metrics.RowsProcessed; got != want {
					t.Fatalf("seed %d %s (fusion=%v): RowsProcessed %d != %d\n%s", seed, cfg.name, fusion, got, want, query)
				}
				if res.Metrics.PeakMemoryBytes > limit {
					t.Fatalf("seed %d %s (fusion=%v): peak tracked memory %d exceeds limit %d\n%s",
						seed, cfg.name, fusion, res.Metrics.PeakMemoryBytes, limit, query)
				}
				if ents, err := os.ReadDir(spillDir); err != nil {
					t.Fatal(err)
				} else if len(ents) != 0 {
					t.Fatalf("seed %d %s (fusion=%v): %d spill files leaked", seed, cfg.name, fusion, len(ents))
				}
			}
		}
	})
}

// TestMemoryExceededError checks the failure mode when unspillable state
// cannot fit: the error unwraps to ErrMemoryExceeded and names the query.
func TestMemoryExceededError(t *testing.T) {
	st := diffTestStore(t)
	// A limit far below any join build or window buffer.
	eng := OpenWithStore(st, Config{MemoryLimitBytes: 1 << 10, SpillDir: t.TempDir()})
	var lastErr error
	for seed := int64(0); seed < 20; seed++ {
		_, err := eng.Query(testgen.New(seed).Query())
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Skip("no query exceeded a 1KB limit; corpus too small")
	}
	if !errors.Is(lastErr, ErrMemoryExceeded) {
		t.Fatalf("error does not unwrap to ErrMemoryExceeded: %v", lastErr)
	}
}

// TestSpillDirCleanupOnAbandonment checks that a query abandoned
// mid-emission (LIMIT over a spilled sort and a spilled aggregation) still
// removes every spill file.
func TestSpillDirCleanupOnAbandonment(t *testing.T) {
	st := diffTestStore(t)
	spillDir := t.TempDir()
	eng := OpenWithStore(st, Config{
		Parallelism: 4, MemoryLimitBytes: spillTestLimit(defaultSpillTestLimit), SpillDir: spillDir,
	})
	var spilled int64
	for seed := int64(0); seed < 25; seed++ {
		q := testgen.New(seed).Query() + " LIMIT 3"
		res, err := eng.Query(q)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, q)
		}
		spilled += res.Metrics.SpilledBytes
	}
	if spilled == 0 {
		t.Log("warning: no LIMIT query spilled; cleanup path not exercised")
	}
	if ents, err := os.ReadDir(spillDir); err != nil {
		t.Fatal(err)
	} else if len(ents) != 0 {
		t.Fatalf("%d spill files leaked after abandoned queries", len(ents))
	}
}

// TestUnwritableSpillDir checks the failure path when the spill directory
// cannot be written: the query fails with a clear error instead of
// corrupting results, and succeeds again once pressure is gone.
func TestUnwritableSpillDir(t *testing.T) {
	st := diffTestStore(t)
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if f, err := os.CreateTemp(dir, "probe"); err == nil {
		f.Close()
		t.Skip("running as privileged user; cannot make dir unwritable")
	}
	eng := OpenWithStore(st, Config{MemoryLimitBytes: spillTestLimit(defaultSpillTestLimit), SpillDir: dir})
	var sawErr bool
	for seed := int64(0); seed < 40 && !sawErr; seed++ {
		if _, err := eng.Query(testgen.New(seed).Query()); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Skip("no query needed to spill; unwritable dir never hit")
	}
	// The same engine with an unlimited budget must still work: the failure
	// is contained to the pressured query.
	ok := OpenWithStore(st, Config{})
	if _, err := ok.Query(testgen.New(0).Query()); err != nil {
		t.Fatalf("unlimited engine failed after spill-dir failure: %v", err)
	}
}
