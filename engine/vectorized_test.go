package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/tpcds"
)

// exactRows renders rows order-sensitively with full float precision: the
// vectorized engine must be bit-for-bit equal to row-at-a-time, not merely
// equal up to rounding.
func exactRows(rows [][]Value) string {
	var b strings.Builder
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestVectorizedRowAtATimeEquivalence is the tentpole's correctness gate:
// for every workload query, the vectorized-parallel engine must return
// byte-identical rows in identical order, scan identical bytes, and count
// identical processed rows compared to the Parallelism=1, BatchSize=1
// configuration (which degenerates to the seed's row-at-a-time behaviour).
func TestVectorizedRowAtATimeEquivalence(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, fusion := range []bool{false, true} {
		rowEng := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		vecEng := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 4, BatchSize: 1024})
		for _, q := range tpcds.Queries() {
			q := q
			t.Run(fmt.Sprintf("fusion=%v/%s", fusion, q.Name), func(t *testing.T) {
				rowRes, err := rowEng.Query(q.SQL)
				if err != nil {
					t.Fatalf("row-at-a-time failed: %v", err)
				}
				vecRes, err := vecEng.Query(q.SQL)
				if err != nil {
					t.Fatalf("vectorized failed: %v", err)
				}
				if got, want := exactRows(vecRes.Rows), exactRows(rowRes.Rows); got != want {
					t.Fatalf("results differ\nvectorized:\n%s\nrow-at-a-time:\n%s\nplan:\n%s",
						got, want, vecRes.Plan)
				}
				if vecRes.Metrics.Storage.BytesScanned != rowRes.Metrics.Storage.BytesScanned {
					t.Errorf("bytes scanned differ: vectorized=%d row=%d",
						vecRes.Metrics.Storage.BytesScanned, rowRes.Metrics.Storage.BytesScanned)
				}
				if vecRes.Metrics.RowsProcessed != rowRes.Metrics.RowsProcessed {
					t.Errorf("rows processed differ: vectorized=%d row=%d",
						vecRes.Metrics.RowsProcessed, rowRes.Metrics.RowsProcessed)
				}
			})
		}
	}
}

// TestConcurrentVectorizedQueries stresses the parallel execution paths:
// many goroutines share one store through separate fused engines — with
// different parallelism and batch-size settings, so morsel-parallel scans,
// partition-wise parallel aggregation and parallel join builds all run at
// once — and every result must match the serial answer (run under -race on
// CI).
func TestConcurrentVectorizedQueries(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	serial := OpenWithStore(st, Config{EnableFusion: true, Parallelism: 1, BatchSize: 1})
	engines := []*Engine{
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 4}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 8, BatchSize: 64}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 3, BatchSize: 7}),
	}

	// Scan-heavy (q09, q28), join+agg (q65, f18), multi-key aggregation with
	// HAVING (f26) and COUNT(DISTINCT) (f11) — the operators that now run
	// partitioned in parallel.
	queries := []string{"q65", "q09", "q28", "f18", "f26", "f11"}
	want := make(map[string]string, len(queries))
	for _, name := range queries {
		q, ok := tpcds.Get(name)
		if !ok {
			t.Fatalf("no query %s", name)
		}
		res, err := serial.Query(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = exactRows(res.Rows)
	}

	const workers = 12
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			name := queries[w%len(queries)]
			eng := engines[w%len(engines)]
			q, _ := tpcds.Get(name)
			res, err := eng.Query(q.SQL)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return
			}
			if got := exactRows(res.Rows); got != want[name] {
				errs <- fmt.Errorf("%s: concurrent result differs from serial", name)
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
