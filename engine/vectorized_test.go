package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/tpcds"
)

// exactRows renders rows order-sensitively with full float precision: the
// vectorized engine must be bit-for-bit equal to row-at-a-time, not merely
// equal up to rounding.
func exactRows(rows [][]Value) string {
	var b strings.Builder
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestVectorizedRowAtATimeEquivalence is the tentpole's correctness gate:
// for every workload query, the vectorized-parallel engine must return
// byte-identical rows in identical order, scan identical bytes, and count
// identical processed rows compared to the Parallelism=1, BatchSize=1
// configuration (which degenerates to the seed's row-at-a-time behaviour).
func TestVectorizedRowAtATimeEquivalence(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, fusion := range []bool{false, true} {
		rowEng := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 1, BatchSize: 1})
		vecEng := OpenWithStore(st, Config{EnableFusion: fusion, Parallelism: 4, BatchSize: 1024})
		for _, q := range tpcds.Queries() {
			q := q
			t.Run(fmt.Sprintf("fusion=%v/%s", fusion, q.Name), func(t *testing.T) {
				rowRes, err := rowEng.Query(q.SQL)
				if err != nil {
					t.Fatalf("row-at-a-time failed: %v", err)
				}
				vecRes, err := vecEng.Query(q.SQL)
				if err != nil {
					t.Fatalf("vectorized failed: %v", err)
				}
				if got, want := exactRows(vecRes.Rows), exactRows(rowRes.Rows); got != want {
					t.Fatalf("results differ\nvectorized:\n%s\nrow-at-a-time:\n%s\nplan:\n%s",
						got, want, vecRes.Plan)
				}
				if vecRes.Metrics.Storage.BytesScanned != rowRes.Metrics.Storage.BytesScanned {
					t.Errorf("bytes scanned differ: vectorized=%d row=%d",
						vecRes.Metrics.Storage.BytesScanned, rowRes.Metrics.Storage.BytesScanned)
				}
				if vecRes.Metrics.RowsProcessed != rowRes.Metrics.RowsProcessed {
					t.Errorf("rows processed differ: vectorized=%d row=%d",
						vecRes.Metrics.RowsProcessed, rowRes.Metrics.RowsProcessed)
				}
			})
		}
	}
}

// TestConcurrentVectorizedQueries stresses the parallel execution paths:
// many goroutines share one store through separate fused engines — with
// different parallelism, batch-size and scan-sharing settings, so
// morsel-parallel scans, partition-wise parallel aggregation, parallel join
// builds and the cross-query scan-share subsystem all run at once — and
// every result must match the serial answer (run under -race on CI).
//
// Workers deliberately overlap queries on the *same* tables with staggered
// starts: each worker runs its own query plus a scan of store_sales (the
// table nearly every query touches), so sharing engines exercise the
// mid-flight attach, cache and LIMIT-abandonment paths under stress rather
// than only disjoint scans.
func TestConcurrentVectorizedQueries(t *testing.T) {
	st, err := tpcds.NewLoadedStore(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	serial := OpenWithStore(st, Config{EnableFusion: true, Parallelism: 1, BatchSize: 1})
	engines := []*Engine{
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 4}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 8, BatchSize: 64}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 3, BatchSize: 7}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 4, ShareScans: true}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 8, BatchSize: 64, ShareScans: true}),
		OpenWithStore(st, Config{EnableFusion: true, Parallelism: 2, BatchSize: 32, ShareScans: true}),
	}

	// Scan-heavy (q09, q28), join+agg (q65, f18), multi-key aggregation with
	// HAVING (f26) and COUNT(DISTINCT) (f11) — the operators that run
	// partitioned in parallel. The LIMIT scan abandons its (possibly shared)
	// morsel stream early while other workers keep consuming the same
	// partitions, and the bare aggregation overlaps every worker on
	// store_sales.
	const limitScan = "SELECT ss_item_sk, ss_quantity FROM store_sales LIMIT 7"
	const overlapScan = "SELECT COUNT(*) AS c, SUM(ss_quantity) AS sq, MIN(ss_sales_price) AS mp FROM store_sales"
	queries := map[string]string{"__limit": limitScan, "__overlap": overlapScan}
	names := []string{"q65", "q09", "q28", "f18", "f26", "f11"}
	for _, name := range names {
		q, ok := tpcds.Get(name)
		if !ok {
			t.Fatalf("no query %s", name)
		}
		queries[name] = q.SQL
	}
	names = append(names, "__limit", "__overlap")
	want := make(map[string]string, len(queries))
	for name, sql := range queries {
		res, err := serial.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want[name] = exactRows(res.Rows)
	}

	const workers = 16
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			// Staggered starts: early workers' scans are mid-flight when
			// later workers arrive, exercising the attach path.
			time.Sleep(time.Duration(w) * 200 * time.Microsecond)
			eng := engines[w%len(engines)]
			for _, name := range []string{names[w%len(names)], "__overlap", "__limit"} {
				res, err := eng.Query(queries[name])
				if err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
				if got := exactRows(res.Rows); got != want[name] {
					errs <- fmt.Errorf("%s: concurrent result differs from serial", name)
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
